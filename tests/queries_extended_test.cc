#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "engine/engine.h"
#include "queries/tpch_queries.h"
#include "ref/reference_executor.h"
#include "test_util.h"
#include "tpch/date.h"

namespace gpl {
namespace {

using testing_util::MediumDb;
using testing_util::SmallDb;

Table RunOnReference(const tpch::Database& db, const LogicalQuery& query) {
  Engine planner(&db, EngineOptions{});
  Result<PhysicalOpPtr> plan = planner.Plan(query);
  GPL_CHECK(plan.ok()) << plan.status().ToString();
  Result<Table> out = ref::ExecutePlan(db, *plan);
  GPL_CHECK(out.ok()) << out.status().ToString();
  return out.take();
}

TEST(ExtendedSuiteTest, HasSixQueries) {
  auto suite = queries::ExtendedSuite();
  ASSERT_EQ(suite.size(), 6u);
  EXPECT_EQ(suite[0].first, "Q1");
  EXPECT_EQ(suite[5].first, "Q19");
}

class ExtendedAllModesTest
    : public ::testing::TestWithParam<std::tuple<EngineMode, int>> {};

TEST_P(ExtendedAllModesTest, ResultsMatchCpuReference) {
  const auto [mode, query_index] = GetParam();
  auto suite = queries::ExtendedSuite();
  const auto& [name, query] = suite[static_cast<size_t>(query_index)];

  Engine planner(&SmallDb(), EngineOptions{});
  Result<PhysicalOpPtr> plan = planner.Plan(query);
  ASSERT_TRUE(plan.ok()) << name;
  Result<Table> expected = ref::ExecutePlan(SmallDb(), *plan);
  ASSERT_TRUE(expected.ok()) << name;

  EngineOptions options;
  options.mode = mode;
  Engine engine(&SmallDb(), options);
  Result<QueryResult> result = engine.Execute(query);
  ASSERT_TRUE(result.ok()) << name << ": " << result.status().ToString();
  std::string diff;
  EXPECT_TRUE(ref::TablesEqual(result->table, *expected, &diff))
      << EngineModeName(mode) << " on " << name << ": " << diff;
}

std::string ExtendedTestName(
    const ::testing::TestParamInfo<ExtendedAllModesTest::ParamType>& info) {
  static const char* const kNames[] = {"Q1", "Q3", "Q6", "Q10", "Q12", "Q19"};
  std::string mode = EngineModeName(std::get<0>(info.param));
  for (char& c : mode) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return mode + "_" + kNames[std::get<1>(info.param)];
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndQueries, ExtendedAllModesTest,
    ::testing::Combine(::testing::Values(EngineMode::kKbe, EngineMode::kGplNoCe,
                                         EngineMode::kGpl, EngineMode::kOcelot),
                       ::testing::Values(0, 1, 2, 3, 4, 5)),
    ExtendedTestName);

TEST(ExtendedSuiteTest, GplBeatsKbeOnEveryExtendedQuery) {
  for (auto& [name, query] : queries::ExtendedSuite()) {
    EngineOptions kbe_options;
    kbe_options.mode = EngineMode::kKbe;
    Engine kbe(&MediumDb(), kbe_options);
    EngineOptions gpl_options;
    gpl_options.mode = EngineMode::kGpl;
    Engine gpl_engine(&MediumDb(), gpl_options);
    Result<QueryResult> k = kbe.Execute(query);
    Result<QueryResult> g = gpl_engine.Execute(query);
    ASSERT_TRUE(k.ok() && g.ok()) << name;
    EXPECT_LT(g->metrics.elapsed_ms, k->metrics.elapsed_ms) << name;
  }
}

// ---- Per-query result sanity ----

TEST(Q1Test, GroupsAreFlagStatusCombinations) {
  Table out = RunOnReference(MediumDb(), queries::Q1());
  // Flags: A/N/R; statuses: F/O. N pairs only with O after the cutoff
  // filter and A/R only with F: at most 4 combinations.
  ASSERT_GE(out.num_rows(), 3);
  ASSERT_LE(out.num_rows(), 6);
  const Column& flag = out.GetColumn("l_returnflag");
  const Column& qty = out.GetColumn("sum_qty");
  const Column& avg_disc = out.GetColumn("avg_disc");
  const Column& count = out.GetColumn("count_order");
  int64_t total = 0;
  for (int64_t i = 0; i < out.num_rows(); ++i) {
    const std::string& f = flag.StringAt(i);
    EXPECT_TRUE(f == "A" || f == "N" || f == "R") << f;
    EXPECT_GT(qty.DoubleAt(i), 0.0);
    EXPECT_GE(avg_disc.DoubleAt(i), 0.0);
    EXPECT_LE(avg_disc.DoubleAt(i), 0.10 + 1e-9);
    total += count.Int64At(i);
  }
  // Nearly all lineitems ship before 1998-09-02.
  EXPECT_GT(total, MediumDb().lineitem.num_rows() * 9 / 10);
}

TEST(Q1Test, AverageConsistentWithSumAndCount) {
  Table out = RunOnReference(MediumDb(), queries::Q1());
  const Column& sum = out.GetColumn("sum_qty");
  const Column& avg = out.GetColumn("avg_qty");
  const Column& count = out.GetColumn("count_order");
  for (int64_t i = 0; i < out.num_rows(); ++i) {
    EXPECT_NEAR(avg.DoubleAt(i),
                sum.DoubleAt(i) / static_cast<double>(count.Int64At(i)), 1e-9);
  }
}

TEST(Q3Test, RevenueSortedDescending) {
  Table out = RunOnReference(MediumDb(), queries::Q3());
  ASSERT_GT(out.num_rows(), 0);
  const Column& revenue = out.GetColumn("revenue");
  for (int64_t i = 1; i < out.num_rows(); ++i) {
    EXPECT_GE(revenue.DoubleAt(i - 1), revenue.DoubleAt(i));
  }
  const Column& prio = out.GetColumn("o_shippriority");
  for (int64_t i = 0; i < out.num_rows(); ++i) {
    EXPECT_EQ(prio.Int32At(i), 0);  // constant per spec
  }
}

TEST(Q3Test, OrderKeysAreUnique) {
  Table out = RunOnReference(MediumDb(), queries::Q3());
  std::set<int32_t> keys;
  const Column& okey = out.GetColumn("l_orderkey");
  for (int64_t i = 0; i < out.num_rows(); ++i) {
    EXPECT_TRUE(keys.insert(okey.Int32At(i)).second)
        << "duplicate group for order " << okey.Int32At(i);
  }
}

TEST(Q6Test, MatchesManualScan) {
  const tpch::Database& db = SmallDb();
  Table out = RunOnReference(db, queries::Q6());
  ASSERT_EQ(out.num_rows(), 1);

  const Column& price = db.lineitem.GetColumn("l_extendedprice");
  const Column& disc = db.lineitem.GetColumn("l_discount");
  const Column& qty = db.lineitem.GetColumn("l_quantity");
  const Column& ship = db.lineitem.GetColumn("l_shipdate");
  const int32_t lo = date::FromYMD(1994, 1, 1);
  const int32_t hi = date::FromYMD(1995, 1, 1);
  double expected = 0.0;
  for (int64_t i = 0; i < price.size(); ++i) {
    if (ship.Int32At(i) >= lo && ship.Int32At(i) < hi &&
        disc.DoubleAt(i) >= 0.0499 && disc.DoubleAt(i) <= 0.0701 &&
        qty.DoubleAt(i) < 24.0) {
      expected += price.DoubleAt(i) * disc.DoubleAt(i);
    }
  }
  EXPECT_GT(expected, 0.0);
  EXPECT_NEAR(out.GetColumn("revenue").DoubleAt(0), expected, 1e-6 * expected);
}

TEST(Q10Test, EveryCustomerAppearsOnce) {
  Table out = RunOnReference(MediumDb(), queries::Q10());
  ASSERT_GT(out.num_rows(), 0);
  std::set<int32_t> customers;
  const Column& cust = out.GetColumn("c_custkey");
  for (int64_t i = 0; i < out.num_rows(); ++i) {
    EXPECT_TRUE(customers.insert(cust.Int32At(i)).second);
  }
  const Column& revenue = out.GetColumn("revenue");
  for (int64_t i = 1; i < out.num_rows(); ++i) {
    EXPECT_GE(revenue.DoubleAt(i - 1), revenue.DoubleAt(i));
  }
}

TEST(Q12Test, ExactlyTwoShipModesWithPlausibleSplit) {
  Table out = RunOnReference(MediumDb(), queries::Q12());
  ASSERT_EQ(out.num_rows(), 2);
  const Column& mode = out.GetColumn("l_shipmode");
  EXPECT_EQ(mode.StringAt(0), "MAIL");  // sorted ascending
  EXPECT_EQ(mode.StringAt(1), "SHIP");
  const Column& high = out.GetColumn("high_line_count");
  const Column& low = out.GetColumn("low_line_count");
  for (int64_t i = 0; i < 2; ++i) {
    EXPECT_GT(high.DoubleAt(i) + low.DoubleAt(i), 0.0);
    // Priorities are uniform over five values, two of which are "high":
    // expect the high share near 40%.
    const double share =
        high.DoubleAt(i) / (high.DoubleAt(i) + low.DoubleAt(i));
    EXPECT_NEAR(share, 0.4, 0.1);
  }
}

TEST(Q19Test, RevenuePositiveAndBranchesFilter) {
  Table out = RunOnReference(MediumDb(), queries::Q19());
  ASSERT_EQ(out.num_rows(), 1);
  const double revenue = out.GetColumn("revenue").DoubleAt(0);
  EXPECT_GT(revenue, 0.0);

  // The disjunctive filter must be far more selective than the pushed-down
  // lineitem prefilter alone.
  const LogicalQuery q = queries::Q19();
  Column pre = q.relations[0].filter->Evaluate(MediumDb().lineitem);
  int64_t prefiltered = 0;
  for (int64_t i = 0; i < pre.size(); ++i) prefiltered += pre.Int32At(i);
  EXPECT_GT(prefiltered, 0);
}

}  // namespace
}  // namespace gpl
