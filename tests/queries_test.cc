#include <gtest/gtest.h>

#include <cmath>

#include "engine/engine.h"
#include "tpch/date.h"
#include "queries/tpch_queries.h"
#include "ref/reference_executor.h"
#include "test_util.h"
#include "tpch/text.h"

namespace gpl {
namespace {

using testing_util::MediumDb;
using testing_util::SmallDb;

Table RunOnReference(const tpch::Database& db, const LogicalQuery& query) {
  Engine planner(&db, EngineOptions{});
  Result<PhysicalOpPtr> plan = planner.Plan(query);
  GPL_CHECK(plan.ok()) << plan.status().ToString();
  Result<Table> out = ref::ExecutePlan(db, *plan);
  GPL_CHECK(out.ok()) << out.status().ToString();
  return out.take();
}

TEST(QueriesTest, SuiteHasFiveQueriesInPaperOrder) {
  auto suite = queries::EvaluationSuite();
  ASSERT_EQ(suite.size(), 5u);
  EXPECT_EQ(suite[0].first, "Q5");
  EXPECT_EQ(suite[4].first, "Q14");
}

TEST(QueriesTest, Q5GroupsAreAsianNations) {
  Table out = RunOnReference(MediumDb(), queries::Q5());
  ASSERT_LE(out.num_rows(), 5);  // 5 nations in ASIA
  ASSERT_GT(out.num_rows(), 0);
  const Column& names = out.GetColumn("n_name");
  for (int64_t i = 0; i < out.num_rows(); ++i) {
    const std::string& name = names.StringAt(i);
    bool asian = false;
    for (int n = 0; n < tpch::kNumNations; ++n) {
      if (tpch::NationName(n) == name && tpch::NationRegion(n) == 2) {
        asian = true;
      }
    }
    EXPECT_TRUE(asian) << name << " is not in ASIA";
  }
  // Revenue sorted descending.
  const Column& revenue = out.GetColumn("revenue");
  for (int64_t i = 1; i < out.num_rows(); ++i) {
    EXPECT_GE(revenue.DoubleAt(i - 1), revenue.DoubleAt(i));
  }
}

TEST(QueriesTest, Q7OnlyFranceGermanyPairs) {
  Table out = RunOnReference(MediumDb(), queries::Q7());
  ASSERT_GT(out.num_rows(), 0);
  const Column& supp = out.GetColumn("supp_nation");
  const Column& cust = out.GetColumn("cust_nation");
  const Column& year = out.GetColumn("l_year");
  for (int64_t i = 0; i < out.num_rows(); ++i) {
    const std::string& s = supp.StringAt(i);
    const std::string& c = cust.StringAt(i);
    EXPECT_TRUE((s == "FRANCE" && c == "GERMANY") ||
                (s == "GERMANY" && c == "FRANCE"))
        << s << " / " << c;
    EXPECT_GE(year.Int32At(i), 1995);
    EXPECT_LE(year.Int32At(i), 1997);  // shipdate window + receipt slack
  }
}

TEST(QueriesTest, Q8MarketShareIsAFraction) {
  Table out = RunOnReference(MediumDb(), queries::Q8());
  ASSERT_GT(out.num_rows(), 0);
  ASSERT_LE(out.num_rows(), 2);  // order years 1995, 1996
  const Column& share = out.GetColumn("mkt_share");
  const Column& year = out.GetColumn("o_year");
  for (int64_t i = 0; i < out.num_rows(); ++i) {
    EXPECT_GE(share.DoubleAt(i), 0.0);
    EXPECT_LE(share.DoubleAt(i), 1.0);
    EXPECT_TRUE(year.Int32At(i) == 1995 || year.Int32At(i) == 1996);
  }
}

TEST(QueriesTest, Q9YearsDescendAndProfitsFinite) {
  Table out = RunOnReference(MediumDb(), queries::Q9());
  ASSERT_GT(out.num_rows(), 0);
  const Column& year = out.GetColumn("o_year");
  for (int64_t i = 1; i < out.num_rows(); ++i) {
    EXPECT_GE(year.Int32At(i - 1), year.Int32At(i));
  }
  const Column& profit = out.GetColumn("sum_profit");
  for (int64_t i = 0; i < out.num_rows(); ++i) {
    EXPECT_TRUE(std::isfinite(profit.DoubleAt(i)));
  }
}

TEST(QueriesTest, Q14PromoShareNearPromoTypeFraction) {
  // PROMO is 25/150 of part types and parts are uniform: expect ~16.7%.
  Table out = RunOnReference(MediumDb(), queries::Q14(0.3));
  ASSERT_EQ(out.num_rows(), 1);
  const double share = out.GetColumn("promo_revenue").DoubleAt(0);
  EXPECT_GT(share, 10.0);
  EXPECT_LT(share, 25.0);
}

TEST(QueriesTest, Q14SelectivityControlsInputFraction) {
  // The selectivity knob drives the actual selected fraction (Figure 3's
  // x-axis): verify the filter passes roughly the requested share.
  const tpch::Database& db = SmallDb();
  for (double sel : {0.1, 0.5, 1.0}) {
    const LogicalQuery q = queries::Q14(sel);
    const ExprPtr filter = q.relations[0].filter;
    Column flags = filter->Evaluate(db.lineitem);
    int64_t selected = 0;
    for (int64_t i = 0; i < flags.size(); ++i) selected += flags.Int32At(i);
    const double actual =
        static_cast<double>(selected) / static_cast<double>(flags.size());
    EXPECT_NEAR(actual, sel, 0.08) << "requested " << sel;
  }
}

TEST(QueriesTest, Q14RejectsInvalidSelectivity) {
  EXPECT_DEATH(queries::Q14(0.0), "selectivity");
  EXPECT_DEATH(queries::Q14(1.5), "selectivity");
}

TEST(QueriesTest, ExampleQueryMatchesManualSum) {
  const tpch::Database& db = SmallDb();
  Table out = RunOnReference(db, queries::ExampleQuery());
  ASSERT_EQ(out.num_rows(), 1);

  // Manual computation of Listing 1.
  const Column& price = db.lineitem.GetColumn("l_extendedprice");
  const Column& disc = db.lineitem.GetColumn("l_discount");
  const Column& tax = db.lineitem.GetColumn("l_tax");
  const Column& ship = db.lineitem.GetColumn("l_shipdate");
  Result<int32_t> cutoff = date::Parse("1998-11-01");
  ASSERT_TRUE(cutoff.ok());
  double expected = 0.0;
  for (int64_t i = 0; i < price.size(); ++i) {
    if (ship.Int32At(i) <= cutoff.value()) {
      expected +=
          price.DoubleAt(i) * (1.0 - disc.DoubleAt(i)) * (1.0 + tax.DoubleAt(i));
    }
  }
  EXPECT_NEAR(out.GetColumn("sum_charge").DoubleAt(0), expected,
              1e-6 * expected);
}

TEST(QueriesTest, IntermediateVolumeGrowsWithSelectivity) {
  // Figure 3's driving property: KBE intermediate bytes grow monotonically
  // with Q14's selectivity.
  int64_t prev = -1;
  for (double sel : {0.01, 0.25, 0.75, 1.0}) {
    EngineOptions options;
    options.mode = EngineMode::kKbe;
    Engine engine(&SmallDb(), options);
    Result<QueryResult> result = engine.Execute(queries::Q14(sel));
    ASSERT_TRUE(result.ok());
    EXPECT_GT(result->metrics.materialized_bytes, prev) << "sel " << sel;
    prev = result->metrics.materialized_bytes;
  }
}

}  // namespace
}  // namespace gpl
