#include <gtest/gtest.h>

#include <algorithm>

#include "plan/segment.h"
#include "plan/selinger.h"
#include "queries/tpch_queries.h"
#include "test_util.h"

namespace gpl {
namespace {

using testing_util::SmallDb;

const Catalog& TestCatalog() {
  static const Catalog* catalog = new Catalog(Catalog::FromDatabase(SmallDb()));
  return *catalog;
}

SegmentedPlan SegmentsFor(const LogicalQuery& q) {
  Result<PhysicalOpPtr> plan = BuildPhysicalPlan(q, TestCatalog());
  GPL_CHECK(plan.ok()) << plan.status().ToString();
  Result<SegmentedPlan> segmented = SegmentPlan(*plan);
  GPL_CHECK(segmented.ok()) << segmented.status().ToString();
  return segmented.take();
}

TEST(SegmentTest, SingleTableQueryIsOneSegment) {
  const SegmentedPlan plan = SegmentsFor(queries::ExampleQuery());
  ASSERT_EQ(plan.segments.size(), 1u);
  const Segment& seg = plan.segments[0];
  EXPECT_EQ(seg.input_table, "lineitem");
  EXPECT_FALSE(seg.output_is_hash_build);
  // map -> project -> reduce: all non-blocking, one pipeline (Figure 7c).
  ASSERT_GE(seg.stages.size(), 2u);
  for (const Stage& stage : seg.stages) {
    EXPECT_FALSE(stage.kernel->blocking());
  }
}

TEST(SegmentTest, JoinProducesBuildSegmentPlusProbePipeline) {
  const SegmentedPlan plan = SegmentsFor(queries::Q14());
  // One build segment (part side) + the probe pipeline.
  ASSERT_EQ(plan.segments.size(), 2u);
  EXPECT_TRUE(plan.segments[0].output_is_hash_build);
  EXPECT_EQ(plan.segments[0].input_table, "part");
  EXPECT_EQ(plan.segments[0].stages.back().kernel->name(), "k_hash_build");
  EXPECT_FALSE(plan.segments[1].output_is_hash_build);
  EXPECT_EQ(plan.segments[1].input_table, "lineitem");
}

TEST(SegmentTest, OnlyLastStageMayBlock) {
  for (auto& [name, q] : queries::EvaluationSuite()) {
    const SegmentedPlan plan = SegmentsFor(q);
    for (const Segment& seg : plan.segments) {
      ASSERT_FALSE(seg.stages.empty()) << name;
      for (size_t s = 0; s + 1 < seg.stages.size(); ++s) {
        EXPECT_FALSE(seg.stages[s].kernel->blocking())
            << name << ": non-terminal blocking kernel "
            << seg.stages[s].kernel->name();
      }
    }
  }
}

TEST(SegmentTest, BuildSegmentsPrecedeTheirProbes) {
  // The final segment holds all probe kernels; every build segment comes
  // before it.
  for (auto& [name, q] : queries::EvaluationSuite()) {
    const SegmentedPlan plan = SegmentsFor(q);
    EXPECT_FALSE(plan.segments.back().output_is_hash_build) << name;
    int builds = 0;
    for (const Segment& seg : plan.segments) {
      if (seg.output_is_hash_build) ++builds;
    }
    EXPECT_EQ(builds, static_cast<int>(q.relations.size()) - 1) << name;
  }
}

TEST(SegmentTest, ProbePipelinesAreDeep) {
  // The multi-join queries stream the fact table through pipelines of probe
  // kernels (the deep pipelines GPL exploits). The exact placement depends
  // on the optimizer's cardinality estimates, but across the suite the
  // final segments must include genuinely deep pipelines.
  int deepest_probes = 0;
  size_t deepest_stages = 0;
  for (auto& [name, q] : queries::EvaluationSuite()) {
    const SegmentedPlan plan = SegmentsFor(q);
    const Segment& last = plan.segments.back();
    int probes = 0;
    for (const Stage& stage : last.stages) {
      if (stage.kernel->name() == "k_hash_probe") ++probes;
    }
    deepest_probes = std::max(deepest_probes, probes);
    deepest_stages = std::max(deepest_stages, last.stages.size());
  }
  EXPECT_GE(deepest_probes, 2);
  EXPECT_GE(deepest_stages, 5u);
}

TEST(SegmentTest, StagesCarryEstimates) {
  const SegmentedPlan plan = SegmentsFor(queries::Q14());
  for (const Segment& seg : plan.segments) {
    EXPECT_GT(seg.est_input_rows, 0.0);
    for (const Stage& stage : seg.stages) {
      EXPECT_GE(stage.est_rows_out, 0.0);
      EXPECT_GE(stage.est_columns_out, 1);
    }
  }
}

TEST(SegmentTest, SegmentInputsAreResolvable) {
  for (auto& [name, q] : queries::EvaluationSuite()) {
    const SegmentedPlan plan = SegmentsFor(q);
    for (size_t i = 0; i < plan.segments.size(); ++i) {
      const Segment& seg = plan.segments[i];
      const bool has_base = !seg.input_table.empty();
      const bool has_intermediate =
          seg.input_segment >= 0 && seg.input_segment < static_cast<int>(i);
      EXPECT_TRUE(has_base || has_intermediate) << name << " segment " << i;
    }
  }
}

}  // namespace
}  // namespace gpl
