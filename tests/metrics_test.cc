#include <gtest/gtest.h>

#include "engine/metrics.h"
#include "sim/engine.h"

namespace gpl {
namespace {

sim::HwCounters SampleCounters() {
  sim::HwCounters c;
  c.elapsed_cycles = 720000.0;  // 1 ms at 720 MHz
  c.compute_cycles = 1000000.0;
  c.mem_cycles = 2000000.0;
  c.channel_cycles = 400000.0;
  c.stall_cycles = 300000.0;
  c.launch_cycles = 60000.0;
  c.cache_hits = 90.0;
  c.cache_accesses = 100.0;
  c.resident_wg_time = 720000.0 * 64.0;
  c.bytes_materialized = 1 << 20;
  c.bytes_via_channel = 3 << 20;
  return c;
}

TEST(HwCountersTest, DerivedRatios) {
  const sim::DeviceSpec device = sim::DeviceSpec::AmdA10();
  const sim::HwCounters c = SampleCounters();
  // 1M compute cycles over 720k elapsed x 8 CUs.
  EXPECT_NEAR(c.ValuBusy(device), 1000000.0 / (720000.0 * 8), 1e-12);
  EXPECT_NEAR(c.MemUnitBusy(device), 2400000.0 / (720000.0 * 8), 1e-12);
  EXPECT_NEAR(c.CacheHitRatio(), 0.9, 1e-12);
  // 64 resident work-groups of 128 possible (16 per CU x 8 CUs).
  EXPECT_NEAR(c.Occupancy(device), 0.5, 1e-12);
}

TEST(HwCountersTest, RatiosClampToOne) {
  const sim::DeviceSpec device = sim::DeviceSpec::AmdA10();
  sim::HwCounters c = SampleCounters();
  c.compute_cycles = 1e12;
  c.mem_cycles = 1e12;
  c.resident_wg_time = 1e12;
  EXPECT_DOUBLE_EQ(c.ValuBusy(device), 1.0);
  EXPECT_DOUBLE_EQ(c.MemUnitBusy(device), 1.0);
  EXPECT_DOUBLE_EQ(c.Occupancy(device), 1.0);
}

TEST(HwCountersTest, EmptyCountersAreZero) {
  const sim::DeviceSpec device = sim::DeviceSpec::AmdA10();
  const sim::HwCounters c;
  EXPECT_DOUBLE_EQ(c.ValuBusy(device), 0.0);
  EXPECT_DOUBLE_EQ(c.MemUnitBusy(device), 0.0);
  EXPECT_DOUBLE_EQ(c.Occupancy(device), 0.0);
  EXPECT_DOUBLE_EQ(c.CacheHitRatio(), 0.0);
}

TEST(HwCountersTest, AccumulateSumsEverything) {
  sim::HwCounters a = SampleCounters();
  const sim::HwCounters b = SampleCounters();
  a.Accumulate(b);
  EXPECT_DOUBLE_EQ(a.elapsed_cycles, 2 * b.elapsed_cycles);
  EXPECT_DOUBLE_EQ(a.compute_cycles, 2 * b.compute_cycles);
  EXPECT_DOUBLE_EQ(a.stall_cycles, 2 * b.stall_cycles);
  EXPECT_EQ(a.bytes_materialized, 2 * b.bytes_materialized);
  EXPECT_EQ(a.bytes_via_channel, 2 * b.bytes_via_channel);
}

TEST(QueryMetricsTest, FinalizeDerivesBreakdownSummingToElapsed) {
  QueryMetrics m;
  m.counters = SampleCounters();
  m.Finalize(sim::DeviceSpec::AmdA10());
  EXPECT_NEAR(m.elapsed_ms, 1.0, 1e-9);
  EXPECT_NEAR(m.compute_ms + m.mem_ms + m.dc_ms + m.delay_ms + m.other_ms,
              m.elapsed_ms, 1e-9);
  // The shares preserve the component proportions.
  EXPECT_NEAR(m.mem_ms / m.compute_ms, 2.0, 1e-9);
  EXPECT_EQ(m.materialized_bytes, 1 << 20);
  EXPECT_EQ(m.channel_bytes, 3 << 20);
}

TEST(QueryMetricsTest, RelativeError) {
  QueryMetrics m;
  m.elapsed_ms = 2.0;
  m.predicted_ms = 1.5;
  EXPECT_NEAR(m.RelativeError(), 0.25, 1e-12);
  m.predicted_ms = 2.5;
  EXPECT_NEAR(m.RelativeError(), 0.25, 1e-12);
  m.elapsed_ms = 0.0;
  EXPECT_DOUBLE_EQ(m.RelativeError(), 0.0);
}

TEST(QueryMetricsTest, CommunicationFraction) {
  QueryMetrics m;
  m.elapsed_ms = 10.0;
  m.mem_ms = 3.0;
  m.dc_ms = 1.0;
  m.delay_ms = 2.0;
  EXPECT_NEAR(m.CommunicationFraction(), 0.6, 1e-12);
}

}  // namespace
}  // namespace gpl
