#include "pool/page_pool.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "pool/subplan_cache.h"

namespace gpl {
namespace {

using pool::PagePool;
using pool::PagePoolOptions;
using pool::PagePoolStats;
using pool::PageRun;
using pool::SubplanCache;
using pool::SubplanCacheOptions;
using pool::SubplanCacheStats;

PagePoolOptions SmallPool(int64_t pages, int64_t page_bytes = 1024) {
  PagePoolOptions options;
  options.page_bytes = page_bytes;
  options.capacity_bytes = pages * page_bytes;
  return options;
}

TEST(PagePoolTest, AcquireRoundsUpToWholePagesAndTracksWaste) {
  PagePool pool(SmallPool(8));
  auto run = pool.Acquire(1500);  // 1.5 pages -> 2 pages
  ASSERT_TRUE(run.has_value());
  EXPECT_EQ(run->pages.size(), 2u);
  EXPECT_EQ(run->payload_bytes, 1500);

  const PagePoolStats stats = pool.stats();
  EXPECT_EQ(stats.used_pages, 2);
  EXPECT_EQ(stats.free_pages, 6);
  EXPECT_EQ(stats.payload_bytes, 1500);
  EXPECT_EQ(stats.waste_bytes, 2 * 1024 - 1500);
  EXPECT_DOUBLE_EQ(stats.Occupancy(), 2.0 / 8.0);

  pool.Release(*run);
  const PagePoolStats after = pool.stats();
  EXPECT_EQ(after.used_pages, 0);
  EXPECT_EQ(after.payload_bytes, 0);
  EXPECT_EQ(after.waste_bytes, 0);
}

TEST(PagePoolTest, ZeroPayloadAlwaysSucceedsWithEmptyRun) {
  PagePool pool(SmallPool(0));  // capacity 0: no pages at all
  auto empty = pool.Acquire(0);
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->empty());

  auto denied = pool.Acquire(1);
  EXPECT_FALSE(denied.has_value());
  EXPECT_EQ(pool.stats().failures, 1u);
}

TEST(PagePoolTest, FailedAcquireLeavesPoolUnchanged) {
  PagePool pool(SmallPool(2));
  auto held = pool.Acquire(2048);  // both pages
  ASSERT_TRUE(held.has_value());
  const PagePoolStats before = pool.stats();

  EXPECT_FALSE(pool.Acquire(1).has_value());
  const PagePoolStats after = pool.stats();
  EXPECT_EQ(after.used_pages, before.used_pages);
  EXPECT_EQ(after.free_pages, before.free_pages);
  EXPECT_EQ(after.payload_bytes, before.payload_bytes);
  EXPECT_EQ(after.failures, before.failures + 1);
}

/// Free pages are handed out lowest-id first regardless of release order, so
/// identical acquire/release sequences always yield identical runs.
TEST(PagePoolTest, AllocationIsLowestIdFirstDeterministic) {
  PagePool pool(SmallPool(4));
  auto a = pool.Acquire(1024);  // page 0
  auto b = pool.Acquire(1024);  // page 1
  auto c = pool.Acquire(1024);  // page 2
  ASSERT_TRUE(a.has_value() && b.has_value() && c.has_value());
  EXPECT_EQ(a->pages, std::vector<int32_t>{0});
  EXPECT_EQ(b->pages, std::vector<int32_t>{1});
  EXPECT_EQ(c->pages, std::vector<int32_t>{2});

  // Release out of order; the next two-page acquire still takes {0, 2}.
  pool.Release(*c);
  pool.Release(*a);
  auto d = pool.Acquire(2048);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->pages, (std::vector<int32_t>{0, 2}));
}

TEST(PagePoolTest, ShareTakesAReferencePerPage) {
  PagePool pool(SmallPool(4));
  auto run = pool.Acquire(2048);
  ASSERT_TRUE(run.has_value());
  PageRun copy = pool.Share(*run);
  EXPECT_EQ(copy.pages, run->pages);

  // One release keeps the pages alive for the other reference.
  pool.Release(*run);
  EXPECT_EQ(pool.stats().used_pages, 2);
  EXPECT_EQ(pool.stats().payload_bytes, 2048);

  pool.Release(copy);
  EXPECT_EQ(pool.stats().used_pages, 0);
  EXPECT_EQ(pool.stats().payload_bytes, 0);
}

/// Prefix sharing: Extend() reuses the prefix's pages (refcounted) and only
/// allocates fresh pages for the tail, so shared pages are charged once.
TEST(PagePoolTest, ExtendSharesPrefixPages) {
  PagePool pool(SmallPool(8));
  auto prefix = pool.Acquire(2048);  // pages {0, 1}
  ASSERT_TRUE(prefix.has_value());

  auto extended = pool.Extend(*prefix, 3072);
  ASSERT_TRUE(extended.has_value());
  EXPECT_EQ(extended->payload_bytes, 3072);
  ASSERT_EQ(extended->pages.size(), 3u);
  EXPECT_EQ(extended->pages[0], prefix->pages[0]);
  EXPECT_EQ(extended->pages[1], prefix->pages[1]);
  EXPECT_EQ(extended->pages[2], 2);

  // The shared pages count once in occupancy: 3 used pages, not 5.
  EXPECT_EQ(pool.stats().used_pages, 3);

  // The prefix run stays independently releasable: dropping it keeps the
  // extended run's pages alive.
  pool.Release(*prefix);
  EXPECT_EQ(pool.stats().used_pages, 3);
  pool.Release(*extended);
  EXPECT_EQ(pool.stats().used_pages, 0);
}

TEST(PagePoolTest, ExtendFailureLeavesPoolUnchanged) {
  PagePool pool(SmallPool(2));
  auto prefix = pool.Acquire(1024);
  ASSERT_TRUE(prefix.has_value());
  const PagePoolStats before = pool.stats();

  // Tail needs 2 pages but only 1 is free.
  EXPECT_FALSE(pool.Extend(*prefix, 1024 + 2048).has_value());
  const PagePoolStats after = pool.stats();
  EXPECT_EQ(after.used_pages, before.used_pages);
  EXPECT_EQ(after.free_pages, before.free_pages);
  EXPECT_EQ(after.failures, before.failures + 1);
}

/// Concurrent acquire/release exactness: hammer the pool from many threads,
/// then verify the books balance to the empty state — no leaked pages, no
/// double frees, no drifting payload accounting.
TEST(PagePoolTest, ConcurrentAcquireReleaseBalancesExactly) {
  PagePool pool(SmallPool(64));
  constexpr int kThreads = 8;
  constexpr int kIters = 500;
  std::atomic<uint64_t> failures{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, &failures, t] {
      for (int i = 0; i < kIters; ++i) {
        // Deterministic per-thread size mix, 0.5 .. 4.5 pages.
        const int64_t bytes = 512 + ((t * 131 + i * 17) % 8) * 512;
        auto run = pool.Acquire(bytes);
        if (!run.has_value()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        PageRun shared = pool.Share(*run);
        pool.Release(*run);
        pool.Release(shared);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const PagePoolStats stats = pool.stats();
  EXPECT_EQ(stats.used_pages, 0);
  EXPECT_EQ(stats.free_pages, stats.total_pages);
  EXPECT_EQ(stats.payload_bytes, 0);
  EXPECT_EQ(stats.waste_bytes, 0);
  EXPECT_EQ(stats.failures, failures.load());
  // Every successful acquire was released twice (itself + its share).
  EXPECT_EQ(stats.releases, 2 * (stats.acquires));

  // The drained pool still allocates deterministically from page 0.
  auto run = pool.Acquire(1024);
  ASSERT_TRUE(run.has_value());
  EXPECT_EQ(run->pages, std::vector<int32_t>{0});
}

// ---------------------------------------------------------------------------
// SubplanCache protocol (the executor-facing layer over the pool).
// ---------------------------------------------------------------------------

SubplanCacheOptions SmallCache(int64_t pages, int64_t page_bytes = 1024) {
  SubplanCacheOptions options;
  options.page_bytes = page_bytes;
  options.capacity_bytes = pages * page_bytes;
  return options;
}

SubplanCache::Payload IntPayload(int value) {
  return std::static_pointer_cast<const void>(std::make_shared<int>(value));
}

int PayloadValue(const SubplanCache::Payload& payload) {
  return *static_cast<const int*>(payload.get());
}

TEST(SubplanCacheTest, MissPublishHitRoundTrip) {
  SubplanCache cache(SmallCache(8));
  SubplanCache::Acquisition first = cache.Acquire("k");
  ASSERT_TRUE(first.owner);
  EXPECT_FALSE(first.hit);
  cache.Publish("k", IntPayload(42), /*bytes=*/100, /*cost_ms=*/1.0);

  SubplanCache::Acquisition second = cache.Acquire("k");
  ASSERT_TRUE(second.hit);
  EXPECT_FALSE(second.owner);
  EXPECT_EQ(PayloadValue(second.payload), 42);

  const SubplanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.entries, 1);
  EXPECT_EQ(stats.bytes, 100);
}

TEST(SubplanCacheTest, AbortWakesWaiterToBecomeOwner) {
  SubplanCache cache(SmallCache(8));
  SubplanCache::Acquisition owner = cache.Acquire("k");
  ASSERT_TRUE(owner.owner);

  std::thread waiter([&cache] {
    SubplanCache::Acquisition acq = cache.Acquire("k");
    // The owner aborted, so the waiter retried and became the next owner.
    ASSERT_TRUE(acq.owner);
    cache.Abort("k");
  });
  // Give the waiter a chance to block on the in-flight record, then abort.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  cache.Abort("k");
  waiter.join();

  EXPECT_EQ(cache.stats().attaches, 0u);
  EXPECT_EQ(cache.stats().entries, 0);
}

/// Capacity 0 retains nothing, but concurrent queries on one key still share
/// the single in-flight compute (the attach path needs no pages).
TEST(SubplanCacheTest, CapacityZeroStillAttachesInFlight) {
  SubplanCache cache(SmallCache(0));
  SubplanCache::Acquisition owner = cache.Acquire("k");
  ASSERT_TRUE(owner.owner);

  std::thread waiter([&cache] {
    SubplanCache::Acquisition acq = cache.Acquire("k");
    ASSERT_TRUE(acq.hit);
    EXPECT_EQ(PayloadValue(acq.payload), 7);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  cache.Publish("k", IntPayload(7), /*bytes=*/100, /*cost_ms=*/1.0);
  waiter.join();

  const SubplanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.attaches, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 0);  // nothing retained
  EXPECT_EQ(stats.rejected, 1u);
  // A later acquire misses: the payload was served but never kept.
  EXPECT_TRUE(cache.Acquire("k").owner);
  cache.Abort("k");
}

/// Eviction under pressure drops the cheapest/least-reused entries but never
/// invalidates a payload a consumer still holds.
TEST(SubplanCacheTest, EvictsColdEntriesUnderPressureAndKeepsServedPins) {
  SubplanCacheOptions options = SmallCache(4);
  options.eviction_window = 2;
  SubplanCache cache(options);

  ASSERT_TRUE(cache.Acquire("a").owner);
  cache.Publish("a", IntPayload(1), /*bytes=*/2048, /*cost_ms=*/1.0);
  SubplanCache::Acquisition pinned = cache.Acquire("a");  // hold the payload
  ASSERT_TRUE(pinned.hit);

  ASSERT_TRUE(cache.Acquire("b").owner);
  cache.Publish("b", IntPayload(2), /*bytes=*/2048, /*cost_ms=*/1.0);
  EXPECT_EQ(cache.stats().entries, 2);

  // A third 2-page entry cannot fit without evicting; "a" has a hit and "b"
  // does not, so "b" is the victim.
  ASSERT_TRUE(cache.Acquire("c").owner);
  cache.Publish("c", IntPayload(3), /*bytes=*/2048, /*cost_ms=*/1.0);

  const SubplanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2);
  EXPECT_TRUE(cache.Acquire("b").owner);  // evicted
  cache.Abort("b");
  EXPECT_TRUE(cache.Acquire("a").hit);
  EXPECT_TRUE(cache.Acquire("c").hit);
  // The pinned payload from before the eviction round is still intact.
  EXPECT_EQ(PayloadValue(pinned.payload), 1);
}

/// Entries publishing the same shared unit charge its pages once; the unit's
/// run is released only when the last referencing entry is dropped.
TEST(SubplanCacheTest, SharedUnitsChargePagesOnce) {
  SubplanCache cache(SmallCache(8));
  const std::vector<SubplanCache::SharedUnit> units = {{"col:a", 2048}};

  ASSERT_TRUE(cache.Acquire("scan1").owner);
  cache.Publish("scan1", IntPayload(1), /*bytes=*/2048, /*cost_ms=*/1.0,
                units);
  ASSERT_TRUE(cache.Acquire("scan2").owner);
  cache.Publish("scan2", IntPayload(2), /*bytes=*/2048, /*cost_ms=*/1.0,
                units);

  // Two entries, one physical 2-page run.
  EXPECT_EQ(cache.stats().entries, 2);
  EXPECT_EQ(cache.pool_stats().used_pages, 2);

  cache.Clear();
  EXPECT_EQ(cache.stats().entries, 0);
  EXPECT_EQ(cache.pool_stats().used_pages, 0);
}

/// Concurrent acquire/publish on overlapping keys: every thread observes the
/// same payload value per key (single compute, everyone attaches or hits),
/// and the books balance afterwards.
TEST(SubplanCacheTest, ConcurrentAcquirePublishExactness) {
  SubplanCache cache(SmallCache(64));
  constexpr int kThreads = 8;
  constexpr int kKeys = 4;
  constexpr int kIters = 200;
  std::atomic<uint64_t> mismatches{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &mismatches, t] {
      for (int i = 0; i < kIters; ++i) {
        const int key_id = (t + i) % kKeys;
        std::string key("k");
        key += std::to_string(key_id);
        SubplanCache::Acquisition acq = cache.Acquire(key);
        if (acq.owner) {
          cache.Publish(key, IntPayload(key_id), /*bytes=*/512,
                        /*cost_ms=*/1.0);
        } else if (PayloadValue(acq.payload) != key_id) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(mismatches.load(), 0u);
  const SubplanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(stats.entries, kKeys);
  // Hot keys: after the first round everything hits.
  EXPECT_GE(stats.HitRate(), 0.9);
}

TEST(SubplanCacheTest, RegisterGaugesExportsOccupancyAndTraffic) {
  obs::MetricsRegistry registry;
  SubplanCache cache(SmallCache(8));
  std::vector<uint64_t> ids = cache.RegisterGauges(&registry, "test_subplan");
  EXPECT_FALSE(ids.empty());

  ASSERT_TRUE(cache.Acquire("k").owner);
  cache.Publish("k", IntPayload(1), /*bytes=*/1500, /*cost_ms=*/1.0);
  cache.AddScanRows(/*shared=*/true, 100);

  bool saw_entries = false;
  bool saw_waste = false;
  for (const obs::FamilySnapshot& family : registry.Collect()) {
    if (family.name == "test_subplan_entries") {
      saw_entries = true;
      ASSERT_EQ(family.series.size(), 1u);
      EXPECT_DOUBLE_EQ(family.series[0].value, 1.0);
    }
    if (family.name == "test_subplan_pool_waste_bytes") {
      saw_waste = true;
      ASSERT_EQ(family.series.size(), 1u);
      EXPECT_DOUBLE_EQ(family.series[0].value, 2 * 1024 - 1500.0);
    }
  }
  EXPECT_TRUE(saw_entries);
  EXPECT_TRUE(saw_waste);
  for (uint64_t id : ids) registry.RemoveCallback(id);
}

}  // namespace
}  // namespace gpl
