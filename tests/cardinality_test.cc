#include <gtest/gtest.h>

#include "plan/cardinality.h"
#include "test_util.h"
#include "tpch/date.h"

namespace gpl {
namespace {

using testing_util::SmallDb;

const Catalog& TestCatalog() {
  static const Catalog* catalog = new Catalog(Catalog::FromDatabase(SmallDb()));
  return *catalog;
}

TEST(CatalogTest, TableRows) {
  const Catalog& c = TestCatalog();
  EXPECT_EQ(c.TableRows("region"), 5);
  EXPECT_EQ(c.TableRows("nation"), 25);
  EXPECT_EQ(c.TableRows("lineitem"), SmallDb().lineitem.num_rows());
  EXPECT_EQ(c.TableRows("klingon"), 0);
}

TEST(CatalogTest, KeyColumnsLookLikeKeys) {
  const Catalog& c = TestCatalog();
  const ColumnStats& custkey = c.Column("c_custkey");
  EXPECT_EQ(custkey.num_distinct, SmallDb().customer.num_rows());
  EXPECT_DOUBLE_EQ(custkey.min_value, 1.0);
}

TEST(CatalogTest, LowCardinalityColumnsDetected) {
  const Catalog& c = TestCatalog();
  EXPECT_EQ(c.Column("n_name").num_distinct, 25);
  EXPECT_LE(c.Column("r_name").num_distinct, 5);
  // l_shipmode has 7 values.
  EXPECT_EQ(c.Column("l_shipmode").num_distinct, 7);
}

TEST(CatalogTest, DateRangeCovered) {
  const Catalog& c = TestCatalog();
  const ColumnStats& odate = c.Column("o_orderdate");
  EXPECT_LE(odate.min_value, date::FromYMD(1992, 3, 1));
  EXPECT_GE(odate.max_value, date::FromYMD(1998, 1, 1));
}

TEST(CatalogTest, SelectivityOfNullPredicateIsOne) {
  EXPECT_DOUBLE_EQ(TestCatalog().EstimateSelectivity(nullptr), 1.0);
}

TEST(CatalogTest, DateRangeSelectivityRoughlyProportional) {
  const Catalog& c = TestCatalog();
  // One year out of ~6.7 years of order dates.
  const double sel = c.EstimateSelectivity(InRange(
      Col("o_orderdate"), LitDate("1994-01-01"), LitDate("1995-01-01")));
  EXPECT_GT(sel, 0.08);
  EXPECT_LT(sel, 0.25);
}

TEST(CatalogTest, StringEqualitySelectivity) {
  const Catalog& c = TestCatalog();
  const double sel =
      c.EstimateSelectivity(Eq(Col("n_name"), LitString("FRANCE")));
  EXPECT_NEAR(sel, 1.0 / 25.0, 0.01);
}

TEST(CatalogTest, SelectivityClampedToValidRange) {
  const Catalog& c = TestCatalog();
  const double tiny = c.EstimateSelectivity(
      And(Eq(Col("c_custkey"), LitInt(1)), Eq(Col("c_custkey"), LitInt(2))));
  EXPECT_GE(tiny, 0.0001);
  const double all = c.EstimateSelectivity(Ge(Col("l_quantity"), LitInt(0)));
  EXPECT_LE(all, 1.0);
  EXPECT_GT(all, 0.9);
}

TEST(CatalogTest, KeyDistinctForColumnRef) {
  const Catalog& c = TestCatalog();
  EXPECT_EQ(c.EstimateKeyDistinct(Col("n_nationkey"), 25), 25);
  // Unknown expressions fall back to the relation size.
  EXPECT_EQ(c.EstimateKeyDistinct(Add(Col("x"), LitInt(1)), 1000), 1000);
}

}  // namespace
}  // namespace gpl
