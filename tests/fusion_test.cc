#include "plan/fusion.h"

#include <vector>

#include <gtest/gtest.h>

#include "exec/fused_kernel.h"
#include "exec/primitives.h"
#include "model/cost_model.h"
#include "test_util.h"

namespace gpl {
namespace {

using testing_util::Int32Table;

FusionStageView Map(int64_t private_bytes = 16) {
  FusionStageView v;
  v.private_bytes_per_item = private_bytes;
  return v;
}

FusionStageView Blocking() {
  FusionStageView v;
  v.blocking = true;
  return v;
}

FusionStageView CompleteAggregate() {
  FusionStageView v;
  v.is_aggregate = true;
  return v;
}

FusionStageView PartialAggregate() {
  FusionStageView v;
  v.is_aggregate = true;
  v.partial_aggregate = true;
  return v;
}

std::vector<size_t> GroupSizes(const FusionPlan& plan) {
  std::vector<size_t> sizes;
  for (const FusedGroup& g : plan.groups) sizes.push_back(g.count);
  return sizes;
}

/// Every stage appears in exactly one group, in order.
void ExpectCoversAllStages(const FusionPlan& plan, size_t num_stages) {
  size_t next = 0;
  for (const FusedGroup& g : plan.groups) {
    EXPECT_EQ(g.first, next);
    EXPECT_GE(g.count, 1u);
    next += g.count;
  }
  EXPECT_EQ(next, num_stages);
}

TEST(PlanFusionTest, AllNonBlockingStagesFuseIntoOneChain) {
  const std::vector<FusionStageView> stages = {Map(), Map(), Map(), Map()};
  const FusionPlan plan = PlanFusion(stages);
  EXPECT_EQ(GroupSizes(plan), (std::vector<size_t>{4}));
  EXPECT_EQ(plan.fused_groups, 1);
  EXPECT_EQ(plan.stages_fused, 4);
  EXPECT_EQ(plan.launches_saved(), 3);
  ExpectCoversAllStages(plan, stages.size());
}

TEST(PlanFusionTest, BlockingStagesNeverFuse) {
  // map | BLOCKING | map map — the barrier executes alone, the tail fuses.
  const std::vector<FusionStageView> stages = {Map(), Blocking(), Map(), Map()};
  const FusionPlan plan = PlanFusion(stages);
  EXPECT_EQ(GroupSizes(plan), (std::vector<size_t>{1, 1, 2}));
  EXPECT_EQ(plan.fused_groups, 1);
  ExpectCoversAllStages(plan, stages.size());

  // Two barriers back-to-back stay singletons.
  const FusionPlan barriers = PlanFusion({Blocking(), Blocking()});
  EXPECT_EQ(GroupSizes(barriers), (std::vector<size_t>{1, 1}));
  EXPECT_EQ(barriers.fused_groups, 0);
  EXPECT_EQ(barriers.launches_saved(), 0);
}

TEST(PlanFusionTest, CompleteAggregateNeverFuses) {
  const std::vector<FusionStageView> stages = {Map(), Map(),
                                               CompleteAggregate()};
  const FusionPlan plan = PlanFusion(stages);
  EXPECT_EQ(GroupSizes(plan), (std::vector<size_t>{2, 1}));
  ExpectCoversAllStages(plan, stages.size());
}

TEST(PlanFusionTest, PartialAggregateOnlyTerminatesAChain) {
  // map map PARTIAL map: the partial aggregate joins as the chain's tail,
  // but nothing fuses after it.
  const std::vector<FusionStageView> stages = {Map(), Map(), PartialAggregate(),
                                               Map()};
  const FusionPlan plan = PlanFusion(stages);
  EXPECT_EQ(GroupSizes(plan), (std::vector<size_t>{3, 1}));
  ExpectCoversAllStages(plan, stages.size());

  // A partial aggregate cannot *head* a chain either — it accumulates, so
  // its successor would never see per-tile output.
  const FusionPlan head = PlanFusion({PartialAggregate(), Map()});
  EXPECT_EQ(GroupSizes(head), (std::vector<size_t>{1, 1}));
}

TEST(PlanFusionTest, ExchangeBoundaryStartsItsOwnChain) {
  // The consumer of exchanged data ran after a device hop: it may not join
  // its producer's kernel, but it can head a fresh chain.
  FusionStageView exchanged = Map();
  exchanged.exchange_boundary = true;
  const std::vector<FusionStageView> stages = {Map(), Map(), exchanged, Map()};
  const FusionPlan plan = PlanFusion(stages);
  EXPECT_EQ(GroupSizes(plan), (std::vector<size_t>{2, 2}));
  EXPECT_EQ(plan.fused_groups, 2);
  ExpectCoversAllStages(plan, stages.size());
}

TEST(PlanFusionTest, MultiConsumerTerminatesItsChain) {
  FusionStageView shared = Map();
  shared.multi_consumer = true;
  const std::vector<FusionStageView> stages = {Map(), shared, Map(), Map()};
  const FusionPlan plan = PlanFusion(stages);
  // The multi-consumer stage joins as tail (its output materializes either
  // way), then the rest start over.
  EXPECT_EQ(GroupSizes(plan), (std::vector<size_t>{2, 2}));
  ExpectCoversAllStages(plan, stages.size());
}

TEST(PlanFusionTest, RegisterBudgetSplitsLongChains) {
  FusionOptions options;
  options.max_private_bytes_per_item = 256;
  // 100 + 100 fits; adding the third (300 > 256) splits the chain.
  const std::vector<FusionStageView> stages = {Map(100), Map(100), Map(100)};
  const FusionPlan plan = PlanFusion(stages, options);
  EXPECT_EQ(GroupSizes(plan), (std::vector<size_t>{2, 1}));

  // A generous budget fuses all three.
  options.max_private_bytes_per_item = 1024;
  EXPECT_EQ(GroupSizes(PlanFusion(stages, options)),
            (std::vector<size_t>{3}));
}

TEST(PlanFusionTest, EmptySegmentYieldsEmptyPlan) {
  const FusionPlan plan = PlanFusion(std::vector<FusionStageView>{});
  EXPECT_TRUE(plan.groups.empty());
  EXPECT_EQ(plan.fused_groups, 0);
  EXPECT_EQ(plan.launches_saved(), 0);
}

// ---- FusedKernel: the composed body must equal the unfused chain ----

TEST(FusedKernelTest, MatchesUnfusedChainBitExactly) {
  const Table input = Int32Table("x", {5, 1, 2, 9, 0, 7, 3});

  KernelPtr filter = MakeFilterKernel(Lt(Col("x"), LitInt(5)));
  KernelPtr project = MakeProjectKernel(
      {{"double_x", Mul(Col("x"), LitInt(2))}, {"x", Col("x")}});
  FusedKernel fused({MakeFilterKernel(Lt(Col("x"), LitInt(5))),
                     MakeProjectKernel({{"double_x", Mul(Col("x"), LitInt(2))},
                                        {"x", Col("x")}})});
  EXPECT_FALSE(fused.blocking());

  Result<Table> step = filter->Process(input);
  ASSERT_TRUE(step.ok());
  Result<Table> expected = project->Process(*step);
  ASSERT_TRUE(expected.ok());
  Result<Table> actual = fused.Process(input);
  ASSERT_TRUE(actual.ok());

  ASSERT_EQ(actual->num_rows(), expected->num_rows());
  ASSERT_EQ(actual->num_columns(), expected->num_columns());
  for (int64_t c = 0; c < expected->num_columns(); ++c) {
    EXPECT_EQ(expected->ColumnAt(c).data32(), actual->ColumnAt(c).data32());
    EXPECT_EQ(expected->ColumnAt(c).data64(), actual->ColumnAt(c).data64());
    EXPECT_EQ(expected->ColumnAt(c).dataf(), actual->ColumnAt(c).dataf());
  }

  // Per-stage observations carry the interior cardinalities the simulator
  // needs: stage 0 saw all rows, stage 1 only the survivors.
  const std::vector<FusedStageObservation>& obs = fused.observations();
  ASSERT_EQ(obs.size(), 2u);
  EXPECT_EQ(obs[0].rows_in, input.num_rows());
  EXPECT_EQ(obs[0].rows_out, expected->num_rows());
  EXPECT_EQ(obs[1].rows_in, expected->num_rows());
  EXPECT_EQ(obs[1].rows_out, expected->num_rows());
}

TEST(FusedKernelTest, ComposedTimingUsesRegisterReuse) {
  KernelPtr a = MakeProjectKernel({{"x", Col("x")}});
  KernelPtr b = MakeFilterKernel(Lt(Col("x"), LitInt(5)));
  const int64_t pa = a->timing().private_bytes_per_item;
  const int64_t pb = b->timing().private_bytes_per_item;
  const int64_t pmax = pa > pb ? pa : pb;

  FusedKernel fused({std::move(a), std::move(b)});
  // max + half the rest: stages run sequentially per item, so the compiler
  // reuses part of each stage's registers (mirrors model::ComposeFusedStage).
  EXPECT_EQ(fused.timing().private_bytes_per_item,
            pmax + (pa + pb - pmax) / 2);
}

TEST(FusedKernelTest, ResetClearsChildrenAndObservations) {
  FusedKernel fused({MakeFilterKernel(Lt(Col("x"), LitInt(5))),
                     MakeProjectKernel({{"x", Col("x")}})});
  ASSERT_TRUE(fused.Process(Int32Table("x", {1, 2, 3})).ok());
  EXPECT_GT(fused.observations()[0].rows_in, 0);
  fused.Reset();
  EXPECT_EQ(fused.observations()[0].rows_in, 0);
  Result<Table> again = fused.Process(Int32Table("x", {1}));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->num_rows(), 1);
}

// ---- model::ComposeFusedStage: the descriptor-level mirror ----

TEST(ComposeFusedStageTest, SumsWorkAndDropsInteriorTraffic) {
  model::SegmentDesc segment;
  segment.input_bytes = 1 << 20;
  for (int i = 0; i < 3; ++i) {
    model::StageDesc s;
    s.timing.name = "k" + std::to_string(i);
    s.timing.compute_inst_per_row = 2.0;
    s.timing.mem_inst_per_row = 4.0;
    s.timing.private_bytes_per_item = 32;
    s.rows_in = 1000.0 - 100.0 * i;
    s.rows_out = 900.0 - 100.0 * i;
    s.bytes_in = 8 * s.rows_in;
    s.bytes_out = 8 * s.rows_out;
    segment.stages.push_back(s);
  }

  const model::StageDesc fused = model::ComposeFusedStage(segment.stages, 0, 3);
  // Boundary I/O is the group's: first stage's input, last stage's output.
  EXPECT_DOUBLE_EQ(fused.rows_in, 1000.0);
  EXPECT_DOUBLE_EQ(fused.bytes_in, 8000.0);
  EXPECT_DOUBLE_EQ(fused.rows_out, 700.0);
  EXPECT_DOUBLE_EQ(fused.bytes_out, 5600.0);
  // Per-row instruction work accumulates scaled by each stage's share of the
  // group's input rows, so it can only shrink relative to the plain sum.
  EXPECT_GT(fused.timing.compute_inst_per_row, 2.0);
  EXPECT_LE(fused.timing.compute_inst_per_row, 6.0);
  // Register reuse: max + half the rest, not the plain sum.
  EXPECT_EQ(fused.timing.private_bytes_per_item, 32 + (96 - 32) / 2);
}

}  // namespace
}  // namespace gpl
