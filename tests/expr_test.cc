#include <gtest/gtest.h>

#include "exec/expr.h"
#include "test_util.h"
#include "tpch/date.h"

namespace gpl {
namespace {

using testing_util::FloatTable;
using testing_util::Int32Table;

Table MixedTable() {
  Table t("t");
  Column i(DataType::kInt32), f(DataType::kFloat64), d(DataType::kDate),
      s(DataType::kString);
  const int32_t base = date::FromYMD(1995, 1, 1);
  for (int r = 0; r < 5; ++r) {
    i.AppendInt32(r);
    f.AppendDouble(r * 1.5);
    d.AppendInt32(base + r * 100);
    s.AppendString(r % 2 == 0 ? "FRANCE" : "GERMANY");
  }
  GPL_CHECK_OK(t.AddColumn("i", std::move(i)));
  GPL_CHECK_OK(t.AddColumn("f", std::move(f)));
  GPL_CHECK_OK(t.AddColumn("d", std::move(d)));
  GPL_CHECK_OK(t.AddColumn("s", std::move(s)));
  return t;
}

TEST(ExprTest, ColumnRefReturnsColumn) {
  Table t = MixedTable();
  Column c = Col("i")->Evaluate(t);
  EXPECT_EQ(c.type(), DataType::kInt32);
  EXPECT_EQ(c.Int32At(3), 3);
  std::string name;
  EXPECT_TRUE(Col("i")->IsColumnRef(&name));
  EXPECT_EQ(name, "i");
}

TEST(ExprTest, LiteralsBroadcast) {
  Table t = MixedTable();
  Column c = LitInt(7)->Evaluate(t);
  ASSERT_EQ(c.size(), t.num_rows());
  EXPECT_EQ(c.Int64At(4), 7);
  Column f = LitFloat(0.5)->Evaluate(t);
  EXPECT_DOUBLE_EQ(f.DoubleAt(0), 0.5);
  double v = 0;
  EXPECT_TRUE(LitInt(7)->IsLiteral(&v));
  EXPECT_DOUBLE_EQ(v, 7.0);
  EXPECT_FALSE(LitString("x")->IsLiteral(&v));
}

TEST(ExprTest, ArithmeticIntAndFloat) {
  Table t = MixedTable();
  Column sum = Add(Col("i"), LitInt(10))->Evaluate(t);
  EXPECT_EQ(sum.type(), DataType::kInt64);
  EXPECT_EQ(sum.Int64At(2), 12);

  Column prod = Mul(Col("f"), LitFloat(2.0))->Evaluate(t);
  EXPECT_EQ(prod.type(), DataType::kFloat64);
  EXPECT_DOUBLE_EQ(prod.DoubleAt(3), 9.0);

  Column mixed = Sub(LitInt(1), Col("f"))->Evaluate(t);
  EXPECT_EQ(mixed.type(), DataType::kFloat64);
  EXPECT_DOUBLE_EQ(mixed.DoubleAt(2), 1.0 - 3.0);
}

TEST(ExprTest, DivisionByZeroYieldsZero) {
  Table t = MixedTable();
  Column q = Div(Col("f"), LitFloat(0.0))->Evaluate(t);
  EXPECT_DOUBLE_EQ(q.DoubleAt(1), 0.0);
  Column qi = Div(Col("i"), LitInt(0))->Evaluate(t);
  EXPECT_EQ(qi.Int64At(1), 0);
}

TEST(ExprTest, Comparisons) {
  Table t = MixedTable();
  Column lt = Lt(Col("i"), LitInt(2))->Evaluate(t);
  EXPECT_EQ(lt.type(), DataType::kInt32);
  EXPECT_EQ(lt.Int32At(0), 1);
  EXPECT_EQ(lt.Int32At(1), 1);
  EXPECT_EQ(lt.Int32At(2), 0);

  Column ge = Ge(Col("f"), LitFloat(3.0))->Evaluate(t);
  EXPECT_EQ(ge.Int32At(1), 0);
  EXPECT_EQ(ge.Int32At(2), 1);

  Column eq = Eq(Col("i"), LitInt(3))->Evaluate(t);
  EXPECT_EQ(eq.Int32At(3), 1);
  EXPECT_EQ(eq.Int32At(2), 0);

  Column ne = Ne(Col("i"), LitInt(3))->Evaluate(t);
  EXPECT_EQ(ne.Int32At(3), 0);

  Column le = Le(Col("i"), LitInt(0))->Evaluate(t);
  EXPECT_EQ(le.Int32At(0), 1);
  EXPECT_EQ(le.Int32At(1), 0);

  Column gt = Gt(Col("i"), LitInt(3))->Evaluate(t);
  EXPECT_EQ(gt.Int32At(4), 1);
  EXPECT_EQ(gt.Int32At(3), 0);
}

TEST(ExprTest, DateComparison) {
  Table t = MixedTable();
  Column c = Lt(Col("d"), LitDate("1995-06-01"))->Evaluate(t);
  // Rows 0 (Jan 1) and 1 (Apr 11) are before June.
  EXPECT_EQ(c.Int32At(0), 1);
  EXPECT_EQ(c.Int32At(1), 1);
  EXPECT_EQ(c.Int32At(2), 0);
}

TEST(ExprTest, StringEqualityViaDictionary) {
  Table t = MixedTable();
  Column eq = Eq(Col("s"), LitString("FRANCE"))->Evaluate(t);
  EXPECT_EQ(eq.Int32At(0), 1);
  EXPECT_EQ(eq.Int32At(1), 0);
  Column ne = Ne(Col("s"), LitString("FRANCE"))->Evaluate(t);
  EXPECT_EQ(ne.Int32At(0), 0);
  EXPECT_EQ(ne.Int32At(1), 1);
  // Literal on the left also works.
  Column eq2 = Eq(LitString("GERMANY"), Col("s"))->Evaluate(t);
  EXPECT_EQ(eq2.Int32At(1), 1);
}

TEST(ExprTest, UnknownStringMatchesNothing) {
  Table t = MixedTable();
  Column eq = Eq(Col("s"), LitString("ATLANTIS"))->Evaluate(t);
  for (int64_t i = 0; i < eq.size(); ++i) EXPECT_EQ(eq.Int32At(i), 0);
}

TEST(ExprTest, LogicalOps) {
  Table t = MixedTable();
  ExprPtr a = Lt(Col("i"), LitInt(3));   // 1 1 1 0 0
  ExprPtr b = Gt(Col("i"), LitInt(1));   // 0 0 1 1 1
  Column land = And(a, b)->Evaluate(t);  // 0 0 1 0 0
  EXPECT_EQ(land.Int32At(2), 1);
  EXPECT_EQ(land.Int32At(0), 0);
  Column lor = Or(a, b)->Evaluate(t);  // 1 1 1 1 1
  for (int64_t i = 0; i < lor.size(); ++i) EXPECT_EQ(lor.Int32At(i), 1);
  Column lnot = Not(a)->Evaluate(t);  // 0 0 0 1 1
  EXPECT_EQ(lnot.Int32At(0), 0);
  EXPECT_EQ(lnot.Int32At(4), 1);
}

TEST(ExprTest, YearOf) {
  Table t = MixedTable();
  Column y = YearOf(Col("d"))->Evaluate(t);
  EXPECT_EQ(y.type(), DataType::kInt32);
  EXPECT_EQ(y.Int32At(0), 1995);
  EXPECT_EQ(y.Int32At(4), 1996);  // 1995-01-01 + 400 days
}

TEST(ExprTest, CaseWhen) {
  Table t = MixedTable();
  Column c = CaseWhen(Eq(Col("s"), LitString("FRANCE")), Col("f"),
                      LitFloat(0.0))
                 ->Evaluate(t);
  EXPECT_DOUBLE_EQ(c.DoubleAt(0), 0.0);
  EXPECT_DOUBLE_EQ(c.DoubleAt(2), 3.0);
  EXPECT_DOUBLE_EQ(c.DoubleAt(1), 0.0);
}

TEST(ExprTest, InRangeIsHalfOpen) {
  Table t = MixedTable();
  Column c = InRange(Col("i"), LitInt(1), LitInt(3))->Evaluate(t);
  EXPECT_EQ(c.Int32At(0), 0);
  EXPECT_EQ(c.Int32At(1), 1);
  EXPECT_EQ(c.Int32At(2), 1);
  EXPECT_EQ(c.Int32At(3), 0);
}

TEST(ExprTest, StrStartsWith) {
  Column s(DataType::kString);
  s.AppendString("PROMO PLATED TIN");
  s.AppendString("STANDARD BRUSHED STEEL");
  s.AppendString("PROMO ANODIZED BRASS");
  Table t("t");
  GPL_CHECK_OK(t.AddColumn("p_type", std::move(s)));
  Column c = StrStartsWith(Col("p_type"), "PROMO")->Evaluate(t);
  EXPECT_EQ(c.Int32At(0), 1);
  EXPECT_EQ(c.Int32At(1), 0);
  EXPECT_EQ(c.Int32At(2), 1);
}

TEST(ExprTest, ToStringReadable) {
  const ExprPtr e = And(Ge(Col("x"), LitInt(1)), Lt(Col("x"), LitInt(5)));
  EXPECT_EQ(e->ToString(), "((x >= 1) AND (x < 5))");
  EXPECT_EQ(YearOf(Col("d"))->ToString(), "YEAR(d)");
  EXPECT_NE(LitDate("1994-01-01")->ToString().find("1994-01-01"),
            std::string::npos);
}

TEST(ExprTest, CollectColumnRefs) {
  const ExprPtr e =
      CaseWhen(Eq(Col("a"), LitString("X")), Mul(Col("b"), Col("c")), Col("d"));
  std::vector<std::string> refs;
  e->CollectColumnRefs(&refs);
  EXPECT_EQ(refs, (std::vector<std::string>{"a", "b", "c", "d"}));
}

TEST(ExprTest, CostPerRowGrowsWithComplexity) {
  const double simple = Col("x")->CostPerRow();
  const double cmp = Lt(Col("x"), LitInt(5))->CostPerRow();
  const double complex_expr =
      Mul(Col("x"), Sub(LitInt(1), Col("y")))->CostPerRow();
  EXPECT_LT(simple, cmp);
  EXPECT_LT(cmp, complex_expr + 1.0);
  EXPECT_GT(complex_expr, 1.0);
}

// ---- Selectivity estimation ----

class FakeStats : public StatsProvider {
 public:
  bool GetColumnStats(const std::string& column, double* min_value,
                      double* max_value, int64_t* num_distinct) const override {
    if (column != "x") return false;
    *min_value = 0.0;
    *max_value = 100.0;
    *num_distinct = 50;
    return true;
  }
};

TEST(SelectivityTest, EqualityUsesNdv) {
  FakeStats stats;
  EXPECT_NEAR(Eq(Col("x"), LitInt(7))->EstimateSelectivity(stats), 1.0 / 50, 1e-9);
  EXPECT_NEAR(Ne(Col("x"), LitInt(7))->EstimateSelectivity(stats), 49.0 / 50,
              1e-9);
}

TEST(SelectivityTest, RangeInterpolates) {
  FakeStats stats;
  EXPECT_NEAR(Lt(Col("x"), LitInt(25))->EstimateSelectivity(stats), 0.25, 1e-9);
  EXPECT_NEAR(Ge(Col("x"), LitInt(25))->EstimateSelectivity(stats), 0.75, 1e-9);
  // Literal on the left flips the direction.
  EXPECT_NEAR(Gt(LitInt(25), Col("x"))->EstimateSelectivity(stats), 0.25, 1e-9);
}

TEST(SelectivityTest, SameColumnRangeUsesIntervalWidth) {
  FakeStats stats;
  // P(x >= 10) = 0.9 and P(x < 60) = 0.6 on the same column: the interval
  // covers 0.9 + 0.6 - 1 = 0.5 of the domain, not the 0.54 product.
  const ExprPtr range = InRange(Col("x"), LitInt(10), LitInt(60));
  EXPECT_NEAR(range->EstimateSelectivity(stats), 0.5, 1e-9);
}

TEST(SelectivityTest, IndependentConjunctsMultiply) {
  FakeStats stats;
  // "y" is unknown to the stats provider (default 0.33), "x" interpolates.
  const ExprPtr both = And(Lt(Col("x"), LitInt(25)), Lt(Col("y"), LitInt(5)));
  EXPECT_NEAR(both->EstimateSelectivity(stats), 0.25 * 0.33, 1e-9);
}

TEST(SelectivityTest, DisjunctionInclusionExclusion) {
  FakeStats stats;
  const ExprPtr either =
      Or(Lt(Col("x"), LitInt(20)), Ge(Col("x"), LitInt(80)));
  EXPECT_NEAR(either->EstimateSelectivity(stats), 0.2 + 0.2 - 0.04, 1e-9);
}

TEST(SelectivityTest, NotComplements) {
  FakeStats stats;
  EXPECT_NEAR(Not(Lt(Col("x"), LitInt(25)))->EstimateSelectivity(stats), 0.75,
              1e-9);
}

TEST(SelectivityTest, UnknownColumnUsesDefault) {
  FakeStats stats;
  const double s = Lt(Col("unknown"), LitInt(5))->EstimateSelectivity(stats);
  EXPECT_GT(s, 0.0);
  EXPECT_LE(s, 1.0);
}

}  // namespace
}  // namespace gpl
