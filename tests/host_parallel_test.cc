/// Determinism contract of the morsel-parallel primitives and the tuning
/// cache: ExecOptions::host_threads is purely a host-side knob. For every
/// query, engine mode and thread count, the result tables, hardware counters
/// and simulated times must be bit-identical to the serial (host_threads=1)
/// oracle path, and a tuning-cache hit must return exactly the choice a
/// fresh grid search would.
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "queries/tpch_queries.h"
#include "test_util.h"

namespace gpl {
namespace {

using testing_util::SmallDb;

void ExpectTablesBitIdentical(const Table& expected, const Table& actual) {
  ASSERT_EQ(expected.num_columns(), actual.num_columns());
  ASSERT_EQ(expected.num_rows(), actual.num_rows());
  for (int64_t i = 0; i < expected.num_columns(); ++i) {
    SCOPED_TRACE("column " + expected.ColumnNameAt(i));
    EXPECT_EQ(expected.ColumnNameAt(i), actual.ColumnNameAt(i));
    const Column& e = expected.ColumnAt(i);
    const Column& a = actual.ColumnAt(i);
    ASSERT_EQ(e.type(), a.type());
    EXPECT_TRUE(e.data32() == a.data32());
    EXPECT_TRUE(e.data64() == a.data64());
    EXPECT_TRUE(e.dataf() == a.dataf());
  }
}

void ExpectCountersBitIdentical(const sim::HwCounters& expected,
                                const sim::HwCounters& actual) {
  EXPECT_EQ(expected.elapsed_cycles, actual.elapsed_cycles);
  EXPECT_EQ(expected.compute_cycles, actual.compute_cycles);
  EXPECT_EQ(expected.mem_cycles, actual.mem_cycles);
  EXPECT_EQ(expected.channel_cycles, actual.channel_cycles);
  EXPECT_EQ(expected.stall_cycles, actual.stall_cycles);
  EXPECT_EQ(expected.launch_cycles, actual.launch_cycles);
  EXPECT_EQ(expected.cache_hits, actual.cache_hits);
  EXPECT_EQ(expected.cache_accesses, actual.cache_accesses);
  EXPECT_EQ(expected.resident_wg_time, actual.resident_wg_time);
  EXPECT_EQ(expected.bytes_materialized, actual.bytes_materialized);
  EXPECT_EQ(expected.bytes_via_channel, actual.bytes_via_channel);
}

void ExpectChoicesIdentical(const model::TuningChoice& expected,
                            const model::TuningChoice& actual) {
  EXPECT_EQ(expected.params.tile_bytes, actual.params.tile_bytes);
  EXPECT_EQ(expected.params.workgroups, actual.params.workgroups);
  ASSERT_EQ(expected.params.channels.size(), actual.params.channels.size());
  for (size_t i = 0; i < expected.params.channels.size(); ++i) {
    EXPECT_EQ(expected.params.channels[i].num_channels,
              actual.params.channels[i].num_channels);
    EXPECT_EQ(expected.params.channels[i].packet_bytes,
              actual.params.channels[i].packet_bytes);
  }
  EXPECT_EQ(expected.estimate.total_cycles, actual.estimate.total_cycles);
}

/// Every query of the evaluation suite under every engine: host_threads in
/// {2, 8} must match the host_threads=1 oracle bit for bit.
TEST(HostParallelTest, AllEnginesBitIdenticalAcrossThreadCounts) {
  const tpch::Database& db = SmallDb();
  const auto suite = queries::EvaluationSuite();

  for (EngineMode mode :
       {EngineMode::kKbe, EngineMode::kGpl, EngineMode::kOcelot}) {
    EngineOptions options;
    options.mode = mode;
    options.exec.host_threads = 1;
    Engine serial_engine(&db, options);

    std::vector<QueryResult> serial;
    serial.reserve(suite.size());
    for (const auto& [name, query] : suite) {
      Result<QueryResult> result = serial_engine.Execute(query);
      ASSERT_TRUE(result.ok())
          << name << ": " << result.status().ToString();
      serial.push_back(result.take());
    }

    for (int threads : {2, 8}) {
      EngineOptions parallel_options = options;
      parallel_options.exec.host_threads = threads;
      Engine engine(&db, parallel_options);
      for (size_t q = 0; q < suite.size(); ++q) {
        SCOPED_TRACE(suite[q].first + " mode=" +
                     EngineModeName(mode) + " threads=" +
                     std::to_string(threads));
        Result<QueryResult> result = engine.Execute(suite[q].second);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        ExpectTablesBitIdentical(serial[q].table, result->table);
        ExpectCountersBitIdentical(serial[q].metrics.counters,
                                   result->metrics.counters);
        EXPECT_EQ(serial[q].metrics.elapsed_ms, result->metrics.elapsed_ms);
        EXPECT_EQ(serial[q].metrics.predicted_ms,
                  result->metrics.predicted_ms);
      }
    }
  }
}

/// The parallel tuner grid search picks exactly the same TuningChoice as the
/// serial search, segment by segment.
TEST(HostParallelTest, TunerChoicesIdenticalAcrossThreadCounts) {
  const tpch::Database& db = SmallDb();
  for (const auto& [name, query] : queries::EvaluationSuite()) {
    SCOPED_TRACE(name);
    EngineOptions options;
    options.mode = EngineMode::kGpl;
    options.exec.host_threads = 1;
    Engine serial_engine(&db, options);
    Result<PhysicalOpPtr> plan = serial_engine.Plan(query);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    Result<GplRunResult> serial = serial_engine.ExecuteGplDetailed(*plan);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();

    EngineOptions parallel_options = options;
    parallel_options.exec.host_threads = 8;
    Engine engine(&db, parallel_options);
    Result<GplRunResult> parallel = engine.ExecuteGplDetailed(*plan);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

    ASSERT_EQ(serial->segments.size(), parallel->segments.size());
    for (size_t s = 0; s < serial->segments.size(); ++s) {
      SCOPED_TRACE("segment " + std::to_string(s));
      ExpectChoicesIdentical(serial->segments[s].tuning,
                             parallel->segments[s].tuning);
    }
    EXPECT_EQ(serial->total_cycles, parallel->total_cycles);
  }
}

/// A cache hit returns exactly the choice the miss computed, and the result
/// is bit-identical to the cold run.
TEST(HostParallelTest, TuningCacheHitReturnsIdenticalChoice) {
  const tpch::Database& db = SmallDb();
  EngineOptions options;
  options.mode = EngineMode::kGpl;
  Engine engine(&db, options);

  const LogicalQuery query = queries::Q5();
  Result<PhysicalOpPtr> plan = engine.Plan(query);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  Result<GplRunResult> cold = engine.ExecuteGplDetailed(*plan);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_EQ(cold->tuning_cache_hits, 0);
  EXPECT_EQ(cold->tuning_cache_misses,
            static_cast<int>(cold->segments.size()));

  Result<GplRunResult> warm = engine.ExecuteGplDetailed(*plan);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_EQ(warm->tuning_cache_hits,
            static_cast<int>(warm->segments.size()));
  EXPECT_EQ(warm->tuning_cache_misses, 0);

  ASSERT_EQ(cold->segments.size(), warm->segments.size());
  for (size_t s = 0; s < cold->segments.size(); ++s) {
    SCOPED_TRACE("segment " + std::to_string(s));
    ExpectChoicesIdentical(cold->segments[s].tuning,
                           warm->segments[s].tuning);
  }
  ExpectTablesBitIdentical(cold->output, warm->output);
  EXPECT_EQ(cold->total_cycles, warm->total_cycles);
  EXPECT_EQ(engine.tuning_cache().stats().hits,
            static_cast<uint64_t>(warm->tuning_cache_hits));
}

/// --no-tuning-cache: the grid search reruns every segment and nothing is
/// counted against the cache.
TEST(HostParallelTest, DisabledCacheNeverCounts) {
  const tpch::Database& db = SmallDb();
  EngineOptions options;
  options.mode = EngineMode::kGpl;
  options.exec.use_tuning_cache = false;
  Engine engine(&db, options);

  for (int round = 0; round < 2; ++round) {
    Result<QueryResult> result = engine.Execute(queries::Q14());
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->metrics.tuning_cache_hits, 0);
    EXPECT_EQ(result->metrics.tuning_cache_misses, 0);
  }
  EXPECT_EQ(engine.tuning_cache().stats().hits, 0u);
  EXPECT_EQ(engine.tuning_cache().stats().misses, 0u);
  EXPECT_EQ(engine.tuning_cache().size(), 0u);
}

/// Pinned-knob runs (use_cost_model=false) bypass the tuner entirely — the
/// cache must stay untouched there too.
TEST(HostParallelTest, NoCostModelBypassesCache) {
  const tpch::Database& db = SmallDb();
  EngineOptions options;
  options.mode = EngineMode::kGpl;
  options.exec.use_cost_model = false;
  options.exec.overrides.tile_bytes = 1 << 20;
  Engine engine(&db, options);
  Result<QueryResult> result = engine.Execute(queries::Q6());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->metrics.tuning_cache_hits, 0);
  EXPECT_EQ(result->metrics.tuning_cache_misses, 0);
  EXPECT_EQ(engine.tuning_cache().size(), 0u);
}

}  // namespace
}  // namespace gpl
