#include <gtest/gtest.h>

#include "tpch/date.h"

namespace gpl {
namespace {

TEST(DateTest, EpochIsZero) { EXPECT_EQ(date::FromYMD(1970, 1, 1), 0); }

TEST(DateTest, KnownDayNumbers) {
  EXPECT_EQ(date::FromYMD(1970, 1, 2), 1);
  EXPECT_EQ(date::FromYMD(1971, 1, 1), 365);
  EXPECT_EQ(date::FromYMD(1992, 1, 1), 8035);
  EXPECT_EQ(date::FromYMD(2000, 3, 1), 11017);
}

TEST(DateTest, RoundTripYMD) {
  int y, m, d;
  date::ToYMD(date::FromYMD(1995, 6, 17), &y, &m, &d);
  EXPECT_EQ(y, 1995);
  EXPECT_EQ(m, 6);
  EXPECT_EQ(d, 17);
}

class DateRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(DateRoundTripTest, EveryDayOfYearRoundTrips) {
  const int year = GetParam();
  const int32_t start = date::FromYMD(year, 1, 1);
  const int32_t end = date::FromYMD(year, 12, 31);
  for (int32_t day = start; day <= end; ++day) {
    int y, m, d;
    date::ToYMD(day, &y, &m, &d);
    EXPECT_EQ(date::FromYMD(y, m, d), day);
    EXPECT_EQ(y, year);
  }
}

INSTANTIATE_TEST_SUITE_P(TpchYears, DateRoundTripTest,
                         ::testing::Values(1992, 1996, 1998, 2000));

TEST(DateTest, ParseValid) {
  Result<int32_t> d = date::Parse("1994-01-01");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value(), date::FromYMD(1994, 1, 1));
}

TEST(DateTest, ParseRejectsGarbage) {
  EXPECT_FALSE(date::Parse("not-a-date").ok());
  EXPECT_FALSE(date::Parse("1994-13-01").ok());
  EXPECT_FALSE(date::Parse("1994-02-30").ok());
}

TEST(DateTest, ParseAcceptsLeapDay) {
  EXPECT_TRUE(date::Parse("1996-02-29").ok());
  EXPECT_FALSE(date::Parse("1995-02-29").ok());
  EXPECT_FALSE(date::Parse("1900-02-29").ok());  // century non-leap
  EXPECT_TRUE(date::Parse("2000-02-29").ok());   // 400-year leap
}

TEST(DateTest, FormatMatchesParse) {
  const int32_t d = date::FromYMD(1998, 8, 2);
  EXPECT_EQ(date::Format(d), "1998-08-02");
  EXPECT_EQ(date::Parse(date::Format(d)).value(), d);
}

TEST(DateTest, YearExtraction) {
  EXPECT_EQ(date::Year(date::FromYMD(1995, 12, 31)), 1995);
  EXPECT_EQ(date::Year(date::FromYMD(1996, 1, 1)), 1996);
}

TEST(DateTest, AddMonthsSimple) {
  const int32_t d = date::FromYMD(1995, 9, 1);
  EXPECT_EQ(date::AddMonths(d, 1), date::FromYMD(1995, 10, 1));
  EXPECT_EQ(date::AddMonths(d, 12), date::FromYMD(1996, 9, 1));
}

TEST(DateTest, AddMonthsAcrossYearEnd) {
  EXPECT_EQ(date::AddMonths(date::FromYMD(1995, 12, 15), 2),
            date::FromYMD(1996, 2, 15));
}

TEST(DateTest, AddMonthsClampsDay) {
  // Jan 31 + 1 month -> Feb 28 (non-leap) / Feb 29 (leap).
  EXPECT_EQ(date::AddMonths(date::FromYMD(1995, 1, 31), 1),
            date::FromYMD(1995, 2, 28));
  EXPECT_EQ(date::AddMonths(date::FromYMD(1996, 1, 31), 1),
            date::FromYMD(1996, 2, 29));
}

TEST(DateTest, TpchDomainBounds) {
  EXPECT_EQ(date::MinDate(), date::FromYMD(1992, 1, 1));
  EXPECT_EQ(date::MaxDate(), date::FromYMD(1998, 12, 31));
  EXPECT_LT(date::MinDate(), date::MaxDate());
}

}  // namespace
}  // namespace gpl
