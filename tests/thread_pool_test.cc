#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "model/tuning_cache.h"

namespace gpl {
namespace {

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ScopedHostParallelism scope(4);
  constexpr int64_t kN = 10'000;
  std::vector<std::atomic<int>> touched(kN);
  for (auto& t : touched) t.store(0);
  ParallelFor(0, kN, /*grain=*/64, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) touched[static_cast<size_t>(i)]++;
  });
  for (int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(touched[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ChunkBoundariesAreFixedRegardlessOfParallelism) {
  // The determinism contract: chunks are [begin + k*grain, ...) whether the
  // loop runs serially or on many threads.
  constexpr int64_t kBegin = 5, kEnd = 1003, kGrain = 100;
  std::set<std::pair<int64_t, int64_t>> expected;
  for (int64_t b = kBegin; b < kEnd; b += kGrain) {
    expected.emplace(b, std::min(b + kGrain, kEnd));
  }
  for (int threads : {1, 2, 8}) {
    ScopedHostParallelism scope(threads);
    std::mutex mu;
    std::set<std::pair<int64_t, int64_t>> seen;
    ParallelFor(kBegin, kEnd, kGrain, [&](int64_t b, int64_t e) {
      std::lock_guard<std::mutex> lock(mu);
      seen.emplace(b, e);
    });
    EXPECT_EQ(seen, expected) << "threads=" << threads;
  }
}

TEST(ThreadPoolTest, ParallelForHandlesEmptyAndSingleChunkRanges) {
  ScopedHostParallelism scope(8);
  int calls = 0;
  ParallelFor(10, 10, 4, [&](int64_t, int64_t) { calls++; });
  EXPECT_EQ(calls, 0);

  std::atomic<int64_t> sum{0};
  ParallelFor(0, 3, 1024, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) sum += i;
  });
  EXPECT_EQ(sum.load(), 3);
}

TEST(ThreadPoolTest, SerialScopeRunsInlineInOrder) {
  // CurrentHostParallelism defaults to 1: chunks run on the caller, in
  // order, so even order-dependent bodies behave like a plain loop.
  EXPECT_EQ(CurrentHostParallelism(), 1);
  std::vector<int64_t> order;
  ParallelFor(0, 100, 10,
              [&](int64_t b, int64_t) { order.push_back(b); });
  ASSERT_EQ(order.size(), 10u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

TEST(ThreadPoolTest, ScopedHostParallelismResolvesAndRestores) {
  EXPECT_EQ(CurrentHostParallelism(), 1);
  {
    ScopedHostParallelism outer(6);
    EXPECT_EQ(outer.resolved(), 6);
    EXPECT_EQ(CurrentHostParallelism(), 6);
    {
      ScopedHostParallelism inner(1);
      EXPECT_EQ(CurrentHostParallelism(), 1);
    }
    EXPECT_EQ(CurrentHostParallelism(), 6);
  }
  EXPECT_EQ(CurrentHostParallelism(), 1);

  // <= 0 resolves to the hardware concurrency.
  ScopedHostParallelism defaulted(0);
  EXPECT_EQ(defaulted.resolved(), HostHardwareThreads());
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ScopedHostParallelism scope(4);
  std::atomic<int64_t> total{0};
  ParallelFor(0, 8, 1, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      int64_t local = 0;
      // Nested loop on the same shared pool; caller participation keeps it
      // deadlock-free even with every worker busy in the outer loop.
      ParallelFor(0, 1000, 50, [&](int64_t ib, int64_t ie) {
        int64_t s = 0;
        for (int64_t j = ib; j < ie; ++j) s += j;
        total += s;
        local += s;
      });
      (void)local;
    }
  });
  EXPECT_EQ(total.load(), 8 * (999 * 1000 / 2));
}

TEST(ThreadPoolTest, SubmitRunsTasks) {
  ThreadPool pool(2);
  constexpr int kTasks = 100;
  std::atomic<int> done{0};
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&done] { done.fetch_add(1); });
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(30);
  while (done.load() < kTasks &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPoolTest, ConcurrentParallelForFromManyThreads) {
  // QueryService shape: several host threads each run their own scoped
  // parallel loops over the one global pool.
  constexpr int kCallers = 4;
  constexpr int64_t kN = 20'000;
  std::vector<int64_t> sums(kCallers, 0);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([c, &sums] {
      ScopedHostParallelism scope(4);
      std::atomic<int64_t> sum{0};
      ParallelFor(0, kN, 256, [&](int64_t b, int64_t e) {
        int64_t s = 0;
        for (int64_t i = b; i < e; ++i) s += i;
        sum += s;
      });
      sums[static_cast<size_t>(c)] = sum.load();
    });
  }
  for (std::thread& t : callers) t.join();
  for (int c = 0; c < kCallers; ++c) {
    EXPECT_EQ(sums[static_cast<size_t>(c)], (kN - 1) * kN / 2);
  }
}

TEST(ThreadPoolTest, PoolGrowsOnDemandAndClampsToMax) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  pool.EnsureThreads(3);
  EXPECT_EQ(pool.num_threads(), 3);
  pool.EnsureThreads(2);  // never shrinks
  EXPECT_EQ(pool.num_threads(), 3);
  pool.EnsureThreads(ThreadPool::kMaxThreads + 100);
  EXPECT_EQ(pool.num_threads(), ThreadPool::kMaxThreads);
}

model::TuningChoice MakeChoice(int64_t tile_bytes) {
  model::TuningChoice choice;
  choice.params.tile_bytes = tile_bytes;
  choice.params.workgroups = {64, 128};
  choice.estimate.total_cycles = static_cast<double>(tile_bytes) * 0.5;
  return choice;
}

TEST(TuningCacheTest, LookupInsertAndStats) {
  model::TuningCache cache;
  EXPECT_FALSE(cache.Lookup("k1").has_value());
  cache.Insert("k1", MakeChoice(1024));
  const auto hit = cache.Lookup("k1");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->params.tile_bytes, 1024);
  EXPECT_EQ(hit->params.workgroups, (std::vector<int>{64, 128}));

  const model::TuningCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_DOUBLE_EQ(stats.HitRate(), 0.5);
  EXPECT_EQ(cache.size(), 1u);

  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(TuningCacheTest, FirstInsertWins) {
  model::TuningCache cache;
  cache.Insert("k", MakeChoice(100));
  cache.Insert("k", MakeChoice(999));  // benign double-miss: ignored
  EXPECT_EQ(cache.Lookup("k")->params.tile_bytes, 100);
}

TEST(TuningCacheTest, SignatureDistinguishesDeviceDescAndOverrides) {
  const sim::DeviceSpec amd = sim::DeviceSpec::AmdA10();
  const sim::DeviceSpec nvidia = sim::DeviceSpec::NvidiaK40();

  model::SegmentDesc desc;
  desc.input_bytes = 1 << 20;
  model::StageDesc stage;
  stage.timing.name = "k_map";
  stage.rows_in = 1000.0;
  stage.bytes_in = 8000.0;
  stage.rows_out = 1000.0;
  stage.bytes_out = 8000.0;
  desc.stages.push_back(stage);

  const model::TuningOverrides none;
  const std::string base =
      model::TuningCache::SegmentSignature(amd, desc, none, "gpl");
  EXPECT_NE(base,
            model::TuningCache::SegmentSignature(nvidia, desc, none, "gpl"));

  model::SegmentDesc other = desc;
  other.stages[0].rows_out = 1001.0;
  EXPECT_NE(base,
            model::TuningCache::SegmentSignature(amd, other, none, "gpl"));

  model::TuningOverrides pinned;
  pinned.tile_bytes = 1 << 20;
  EXPECT_NE(base,
            model::TuningCache::SegmentSignature(amd, desc, pinned, "gpl"));

  // The engine scope is part of the key: the same segment tuned under
  // another engine mode (or fusion grouping) must never alias.
  EXPECT_NE(base,
            model::TuningCache::SegmentSignature(amd, desc, none, "noce"));
  EXPECT_NE(base,
            model::TuningCache::SegmentSignature(amd, desc, none, "fused:1"));

  // Deterministic: the same inputs always produce the same key.
  EXPECT_EQ(base, model::TuningCache::SegmentSignature(amd, desc, none, "gpl"));
}

TEST(TuningCacheTest, ConcurrentLookupInsertIsSafe) {
  model::TuningCache cache;
  constexpr int kThreads = 8;
  constexpr int kKeys = 32;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache] {
      for (int rep = 0; rep < 50; ++rep) {
        for (int k = 0; k < kKeys; ++k) {
          const std::string key = "key" + std::to_string(k);
          if (auto cached = cache.Lookup(key)) {
            // Values are keyed by construction: any racing insert stored
            // the same payload.
            EXPECT_EQ(cached->params.tile_bytes, k);
          } else {
            cache.Insert(key, MakeChoice(k));
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(cache.size(), static_cast<size_t>(kKeys));
  const model::TuningCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads) * 50 * kKeys);
}

}  // namespace
}  // namespace gpl
