#include "exec/exact_sum.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include "gtest/gtest.h"

namespace gpl {
namespace {

uint64_t BitsOf(double x) {
  uint64_t b;
  std::memcpy(&b, &x, sizeof(b));
  return b;
}

// A mix of magnitudes hostile to naive summation: large/small cancellation,
// subnormals, and sign flips.
std::vector<double> HostileValues(uint32_t seed, size_t n) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> unit(-1.0, 1.0);
  std::uniform_int_distribution<int> exp_dist(-300, 300);
  std::vector<double> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    double v = std::ldexp(unit(rng), exp_dist(rng));
    if (i % 7 == 0) v = std::ldexp(unit(rng), -1060);  // subnormal range
    if (i % 11 == 0) v = -v;
    out.push_back(v);
  }
  return out;
}

TEST(ExactSumTest, SingleValueRoundTrips) {
  const double cases[] = {0.0,
                          -0.0,
                          1.0,
                          -1.0,
                          0.1,
                          1e308,
                          -1e308,
                          5e-324,  // smallest subnormal
                          -5e-324,
                          std::numeric_limits<double>::denorm_min(),
                          std::numeric_limits<double>::max(),
                          std::numeric_limits<double>::min()};
  for (double v : cases) {
    ExactFloat64Sum sum;
    sum.Add(v);
    const double r = sum.Round();
    if (v == 0.0) {
      EXPECT_EQ(r, 0.0);
    } else {
      EXPECT_EQ(BitsOf(r), BitsOf(v)) << "value " << v;
    }
  }
}

TEST(ExactSumTest, ExactCancellation) {
  ExactFloat64Sum sum;
  sum.Add(1e308);
  sum.Add(1.0);
  sum.Add(-1e308);
  EXPECT_EQ(sum.Round(), 1.0);

  ExactFloat64Sum zero;
  const std::vector<double> vs = HostileValues(7, 1000);
  for (double v : vs) zero.Add(v);
  for (double v : vs) zero.Add(-v);
  EXPECT_EQ(zero.Round(), 0.0);
  EXPECT_EQ(zero.ToCanonical().sign, 0);
}

TEST(ExactSumTest, OrderIndependent) {
  std::vector<double> vs = HostileValues(42, 5000);
  ExactFloat64Sum forward;
  for (double v : vs) forward.Add(v);
  const auto canon = forward.ToCanonical();
  const double rounded = forward.Round();

  std::mt19937_64 rng(9);
  for (int trial = 0; trial < 5; ++trial) {
    std::shuffle(vs.begin(), vs.end(), rng);
    ExactFloat64Sum shuffled;
    for (double v : vs) shuffled.Add(v);
    const auto c = shuffled.ToCanonical();
    EXPECT_EQ(c.sign, canon.sign);
    EXPECT_EQ(c.digits, canon.digits);
    EXPECT_EQ(BitsOf(shuffled.Round()), BitsOf(rounded));
  }
}

TEST(ExactSumTest, MergeEqualsSerial) {
  const std::vector<double> vs = HostileValues(123, 4096);
  ExactFloat64Sum serial;
  for (double v : vs) serial.Add(v);

  for (size_t shards : {2u, 3u, 4u, 8u}) {
    std::vector<ExactFloat64Sum> parts(shards);
    for (size_t i = 0; i < vs.size(); ++i) parts[i % shards].Add(vs[i]);
    ExactFloat64Sum merged;
    for (const ExactFloat64Sum& p : parts) merged.Merge(p);
    const auto a = merged.ToCanonical();
    const auto b = serial.ToCanonical();
    EXPECT_EQ(a.sign, b.sign) << shards << " shards";
    EXPECT_EQ(a.digits, b.digits) << shards << " shards";
    EXPECT_EQ(BitsOf(merged.Round()), BitsOf(serial.Round()));
  }
}

TEST(ExactSumTest, CanonicalRoundTripsThroughAddCanonical) {
  const std::vector<double> vs = HostileValues(5, 257);
  ExactFloat64Sum sum;
  for (double v : vs) sum.Add(v);
  ExactFloat64Sum restored;
  restored.AddCanonical(sum.ToCanonical());
  EXPECT_EQ(restored.ToCanonical().digits, sum.ToCanonical().digits);
  EXPECT_EQ(BitsOf(restored.Round()), BitsOf(sum.Round()));
}

TEST(ExactSumTest, SmallIntegerSumsAreExact) {
  ExactFloat64Sum sum;
  int64_t expect = 0;
  for (int i = -500; i <= 1500; ++i) {
    sum.Add(static_cast<double>(i));
    expect += i;
  }
  EXPECT_EQ(sum.Round(), static_cast<double>(expect));
}

TEST(ExactSumTest, NearestRounding) {
  // 1 + 2^-53 + 2^-53 must round to the true sum's nearest double
  // (1 + 2^-52), which naive left-to-right folding misses.
  ExactFloat64Sum sum;
  sum.Add(1.0);
  sum.Add(std::ldexp(1.0, -53));
  sum.Add(std::ldexp(1.0, -53));
  EXPECT_EQ(BitsOf(sum.Round()), BitsOf(1.0 + std::ldexp(1.0, -52)));
}

TEST(ExactSumTest, Specials) {
  const double inf = std::numeric_limits<double>::infinity();
  ExactFloat64Sum pos;
  pos.Add(inf);
  pos.Add(-1e300);
  EXPECT_EQ(pos.Round(), inf);

  ExactFloat64Sum neg;
  neg.Add(-inf);
  EXPECT_EQ(neg.Round(), -inf);

  ExactFloat64Sum both;
  both.Add(inf);
  both.Add(-inf);
  EXPECT_TRUE(std::isnan(both.Round()));

  ExactFloat64Sum nan;
  nan.Add(std::numeric_limits<double>::quiet_NaN());
  nan.Add(1.0);
  EXPECT_TRUE(std::isnan(nan.Round()));

  // Flags survive merge.
  ExactFloat64Sum merged;
  merged.Merge(pos);
  merged.Merge(neg);
  EXPECT_TRUE(std::isnan(merged.Round()));
}

TEST(ExactSumTest, ManyAddsTriggerNormalization) {
  // Not 2^30 adds (too slow for a unit test), but enough accumulation on one
  // digit bundle to exercise carry buildup, plus an explicit canonical check.
  ExactFloat64Sum sum;
  const double v = 1.0 + std::ldexp(1.0, -20);
  for (int i = 0; i < 1'000'000; ++i) sum.Add(v);
  const double expect = 1'000'000.0 * v;  // exact: product fits in 34 bits
  EXPECT_EQ(BitsOf(sum.Round()), BitsOf(expect));
}

TEST(ExactSumTest, ClearResets) {
  ExactFloat64Sum sum;
  sum.Add(123.456);
  sum.Add(std::numeric_limits<double>::infinity());
  sum.Clear();
  EXPECT_EQ(sum.Round(), 0.0);
  EXPECT_EQ(sum.ToCanonical().sign, 0);
}

}  // namespace
}  // namespace gpl
