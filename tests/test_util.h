#ifndef GPL_TESTS_TEST_UTIL_H_
#define GPL_TESTS_TEST_UTIL_H_

#include "storage/table.h"
#include "tpch/dbgen.h"

namespace gpl {
namespace testing_util {

/// A small shared TPC-H database (SF 0.005), generated once per test binary.
inline const tpch::Database& SmallDb() {
  static const tpch::Database* db = [] {
    tpch::DbgenConfig config;
    config.scale_factor = 0.005;
    config.seed = 20160626;
    return new tpch::Database(tpch::Generate(config));
  }();
  return *db;
}

/// A slightly larger database (SF 0.02) for engine-level tests where tiling
/// and cache effects need some volume.
inline const tpch::Database& MediumDb() {
  static const tpch::Database* db = [] {
    tpch::DbgenConfig config;
    config.scale_factor = 0.02;
    config.seed = 20160626;
    return new tpch::Database(tpch::Generate(config));
  }();
  return *db;
}

/// Builds a single-column int32 table for kernel-level tests.
inline Table Int32Table(const std::string& column,
                        const std::vector<int32_t>& values) {
  Column col(DataType::kInt32);
  for (int32_t v : values) col.AppendInt32(v);
  Table t("test");
  GPL_CHECK_OK(t.AddColumn(column, std::move(col)));
  return t;
}

/// Builds a single-column float64 table.
inline Table FloatTable(const std::string& column,
                        const std::vector<double>& values) {
  Column col(DataType::kFloat64);
  for (double v : values) col.AppendDouble(v);
  Table t("test");
  GPL_CHECK_OK(t.AddColumn(column, std::move(col)));
  return t;
}

}  // namespace testing_util
}  // namespace gpl

#endif  // GPL_TESTS_TEST_UTIL_H_
