/// End-to-end trace smoke test (registered as a plain ctest, no gtest).
///
/// Without arguments: runs TPC-H Q5 under the GPL engine with tracing on,
/// writes the Chrome trace to a temp file, re-reads it, validates the JSON
/// with the built-in parser, and checks that spans cover >= 95% of the
/// simulated elapsed time and that channel-stall instants are present.
///
/// With a path argument: only validates that file as JSON (lets scripts
/// reuse the binary to check a trace produced by `gplcli --trace=...`).
///
/// With `--jsonl <path> [min_lines]`: validates every non-empty line of the
/// file as its own JSON value and requires at least `min_lines` of them
/// (default 1) — the checker for `gplcli --stats-jsonl` telemetry streams.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "engine/engine.h"
#include "queries/tpch_queries.h"
#include "tpch/dbgen.h"
#include "trace/json.h"
#include "trace/trace.h"

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "trace_smoke: FAIL: %s\n", message.c_str());
  return 1;
}

int ValidateFile(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Fail(std::string("cannot open ") + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  if (!gpl::trace::ValidateJson(buffer.str(), &error)) {
    return Fail(std::string(path) + " is not valid JSON: " + error);
  }
  std::printf("trace_smoke: OK (%s valid, %zu bytes)\n", path,
              buffer.str().size());
  return 0;
}

int ValidateJsonl(const char* path, int min_lines) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Fail(std::string("cannot open ") + path);
  std::string line;
  int valid_lines = 0;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::string error;
    if (!gpl::trace::ValidateJson(line, &error)) {
      return Fail(std::string(path) + ":" + std::to_string(line_no) +
                  " is not valid JSON: " + error);
    }
    ++valid_lines;
  }
  if (valid_lines < min_lines) {
    return Fail(std::string(path) + " has " + std::to_string(valid_lines) +
                " JSON lines, expected >= " + std::to_string(min_lines));
  }
  std::printf("trace_smoke: OK (%s, %d valid JSON lines)\n", path,
              valid_lines);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 2 && std::string(argv[1]) == "--jsonl") {
    const int min_lines = argc > 3 ? std::atoi(argv[3]) : 1;
    return ValidateJsonl(argv[2], min_lines);
  }
  if (argc > 1) return ValidateFile(argv[1]);

  gpl::tpch::DbgenConfig config;
  config.scale_factor = 0.02;
  const gpl::tpch::Database db = gpl::tpch::Generate(config);

  gpl::trace::TraceCollector collector;
  gpl::EngineOptions options;
  options.mode = gpl::EngineMode::kGpl;
  options.exec.trace = &collector;
  gpl::Engine engine(&db, options);
  gpl::Result<gpl::QueryResult> result = engine.Execute(gpl::queries::Q5());
  if (!result.ok()) return Fail("Q5 failed: " + result.status().ToString());

  if (collector.spans().empty()) return Fail("no spans recorded");
  const double elapsed_cycles = result->metrics.counters.elapsed_cycles;
  const double coverage = collector.SpanCoverageCycles();
  if (coverage < 0.95 * elapsed_cycles) {
    return Fail("span coverage " + std::to_string(coverage) + " cycles < 95% of " +
                std::to_string(elapsed_cycles));
  }

  bool has_stall_instant = false;
  for (const gpl::trace::InstantEvent& instant : collector.instants()) {
    if (instant.category == "stall") has_stall_instant = true;
  }
  if (!has_stall_instant) return Fail("no channel-stall instants recorded");

  const char* tmpdir = std::getenv("TMPDIR");
  const std::string path =
      std::string(tmpdir != nullptr ? tmpdir : "/tmp") + "/gpl_trace_smoke.json";
  gpl::Status status = collector.WriteChromeJson(path);
  if (!status.ok()) return Fail("write failed: " + status.ToString());

  const int rc = ValidateFile(path.c_str());
  if (rc != 0) return rc;
  std::remove(path.c_str());
  std::printf(
      "trace_smoke: OK (Q5 GPL: %zu spans, %zu counters, %zu instants, "
      "coverage %.1f%% of %.0f cycles)\n",
      collector.spans().size(), collector.counters().size(),
      collector.instants().size(), 100.0 * coverage / elapsed_cycles,
      elapsed_cycles);
  return 0;
}
