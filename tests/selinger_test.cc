#include <gtest/gtest.h>

#include <algorithm>

#include "plan/selinger.h"
#include "queries/tpch_queries.h"
#include "test_util.h"

namespace gpl {
namespace {

using testing_util::SmallDb;

const Catalog& TestCatalog() {
  static const Catalog* catalog = new Catalog(Catalog::FromDatabase(SmallDb()));
  return *catalog;
}

TEST(JoinOrderTest, SingleRelation) {
  LogicalQuery q;
  q.name = "single";
  q.relations = {{"lineitem", {"l_orderkey"}, nullptr, ""}};
  Result<JoinOrder> order = OptimizeJoinOrder(q, TestCatalog());
  ASSERT_TRUE(order.ok());
  EXPECT_EQ(order->order, (std::vector<int>{0}));
}

TEST(JoinOrderTest, CoversAllRelationsExactlyOnce) {
  for (auto& [name, q] : queries::EvaluationSuite()) {
    Result<JoinOrder> order = OptimizeJoinOrder(q, TestCatalog());
    ASSERT_TRUE(order.ok()) << name;
    std::vector<int> sorted = order->order;
    std::sort(sorted.begin(), sorted.end());
    for (size_t i = 0; i < sorted.size(); ++i) {
      EXPECT_EQ(sorted[i], static_cast<int>(i)) << name;
    }
    EXPECT_EQ(order->rows_after_step.size(), order->order.size());
  }
}

TEST(JoinOrderTest, EveryStepIsConnected) {
  const LogicalQuery q = queries::Q5();
  Result<JoinOrder> order = OptimizeJoinOrder(q, TestCatalog());
  ASSERT_TRUE(order.ok());
  std::vector<bool> joined(q.relations.size(), false);
  joined[static_cast<size_t>(order->order[0])] = true;
  for (size_t step = 1; step < order->order.size(); ++step) {
    const int r = order->order[step];
    bool connected = false;
    for (const JoinEdge& e : q.joins) {
      if ((e.left == r && joined[static_cast<size_t>(e.right)]) ||
          (e.right == r && joined[static_cast<size_t>(e.left)])) {
        connected = true;
      }
    }
    EXPECT_TRUE(connected) << "step " << step;
    joined[static_cast<size_t>(r)] = true;
  }
}

TEST(JoinOrderTest, DisconnectedGraphRejected) {
  LogicalQuery q;
  q.name = "disconnected";
  q.relations = {{"nation", {"n_nationkey"}, nullptr, ""},
                 {"region", {"r_regionkey"}, nullptr, ""}};
  // No join edges.
  Result<JoinOrder> order = OptimizeJoinOrder(q, TestCatalog());
  EXPECT_FALSE(order.ok());
}

TEST(JoinOrderTest, SmallDimensionTablesJoinEagerly) {
  // For Q5 the optimizer should not pay the full customer x orders cross
  // product cost: total cost stays far below the naive worst case.
  Result<JoinOrder> order = OptimizeJoinOrder(queries::Q5(), TestCatalog());
  ASSERT_TRUE(order.ok());
  const double lineitem_rows =
      static_cast<double>(TestCatalog().TableRows("lineitem"));
  EXPECT_LT(order->total_cost, 20.0 * lineitem_rows);
}

TEST(PhysicalPlanTest, PlansBuildForAllQueries) {
  for (auto& [name, q] : queries::EvaluationSuite()) {
    Result<PhysicalOpPtr> plan = BuildPhysicalPlan(q, TestCatalog());
    ASSERT_TRUE(plan.ok()) << name << ": " << plan.status().ToString();
    EXPECT_FALSE(PlanToString(**plan).empty());
  }
}

int CountKind(const PhysicalOp& op, PhysicalOp::Kind kind) {
  int count = op.kind == kind ? 1 : 0;
  if (op.child != nullptr) count += CountKind(*op.child, kind);
  if (op.build_child != nullptr) count += CountKind(*op.build_child, kind);
  return count;
}

TEST(PhysicalPlanTest, JoinCountMatchesRelations) {
  for (auto& [name, q] : queries::EvaluationSuite()) {
    Result<PhysicalOpPtr> plan = BuildPhysicalPlan(q, TestCatalog());
    ASSERT_TRUE(plan.ok()) << name;
    EXPECT_EQ(CountKind(**plan, PhysicalOp::Kind::kHashJoin),
              static_cast<int>(q.relations.size()) - 1)
        << name;
    EXPECT_EQ(CountKind(**plan, PhysicalOp::Kind::kScan),
              static_cast<int>(q.relations.size()))
        << name;
  }
}

TEST(PhysicalPlanTest, AggregateAndSortPlacement) {
  Result<PhysicalOpPtr> plan = BuildPhysicalPlan(queries::Q5(), TestCatalog());
  ASSERT_TRUE(plan.ok());
  // Root is the sort; below it the aggregate.
  EXPECT_EQ((*plan)->kind, PhysicalOp::Kind::kSort);
  EXPECT_EQ((*plan)->child->kind, PhysicalOp::Kind::kAggregate);
}

TEST(PhysicalPlanTest, PostAggregateProjectionPresent) {
  Result<PhysicalOpPtr> plan = BuildPhysicalPlan(queries::Q14(), TestCatalog());
  ASSERT_TRUE(plan.ok());
  // Q14 has no order-by; root is the post-aggregate projection.
  EXPECT_EQ((*plan)->kind, PhysicalOp::Kind::kProject);
  ASSERT_EQ((*plan)->projections.size(), 1u);
  EXPECT_EQ((*plan)->projections[0].name, "promo_revenue");
}

TEST(PhysicalPlanTest, OutputColumnsOfScanRespectAlias) {
  PhysicalOpPtr scan = MakeScan("nation", {"n_nationkey", "n_name"}, "n1");
  const std::vector<std::string> cols = OutputColumns(*scan);
  EXPECT_EQ(cols, (std::vector<std::string>{"n1_n_nationkey", "n1_n_name"}));
}

TEST(PhysicalPlanTest, OutputColumnsOfJoinAppendPayload) {
  PhysicalOpPtr probe = MakeScan("lineitem", {"l_orderkey"});
  PhysicalOpPtr build = MakeScan("orders", {"o_orderkey", "o_orderdate"});
  PhysicalOpPtr join =
      MakeHashJoin(probe, build, {Col("l_orderkey")}, {Col("o_orderkey")},
                   {"o_orderkey", "o_orderdate"});
  const std::vector<std::string> cols = OutputColumns(*join);
  EXPECT_EQ(cols, (std::vector<std::string>{"l_orderkey", "o_orderkey",
                                            "o_orderdate"}));
}

TEST(PhysicalPlanTest, EstimatedRowsPopulated) {
  Result<PhysicalOpPtr> plan = BuildPhysicalPlan(queries::Q14(), TestCatalog());
  ASSERT_TRUE(plan.ok());
  // Walk down: every node has a positive estimate.
  const PhysicalOp* op = plan->get();
  while (op != nullptr) {
    EXPECT_GT(op->est_rows, 0.0);
    op = op->child.get();
  }
}

}  // namespace
}  // namespace gpl
