#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "engine/engine.h"
#include "engine/explain_analyze.h"
#include "queries/tpch_queries.h"
#include "test_util.h"

namespace gpl {
namespace {

using testing_util::MediumDb;
using testing_util::SmallDb;

/// Bit-level table equality: raw physical buffers, no tolerance. Fusion is a
/// pure execution-strategy change, so it must not move a single bit.
void ExpectTablesBitIdentical(const Table& expected, const Table& actual) {
  ASSERT_EQ(expected.num_columns(), actual.num_columns());
  ASSERT_EQ(expected.num_rows(), actual.num_rows());
  for (int64_t i = 0; i < expected.num_columns(); ++i) {
    SCOPED_TRACE("column " + expected.ColumnNameAt(i));
    EXPECT_EQ(expected.ColumnNameAt(i), actual.ColumnNameAt(i));
    const Column& e = expected.ColumnAt(i);
    const Column& a = actual.ColumnAt(i);
    ASSERT_EQ(e.type(), a.type());
    EXPECT_TRUE(e.data32() == a.data32());
    EXPECT_TRUE(e.data64() == a.data64());
    EXPECT_TRUE(e.dataf() == a.dataf());
  }
}

QueryResult RunMode(const tpch::Database& db, const LogicalQuery& query,
                    EngineMode mode, int host_threads, int shards) {
  EngineOptions options;
  options.mode = mode;
  options.exec.host_threads = host_threads;
  options.exec.shards = shards;
  Engine engine(&db, options);
  Result<QueryResult> result = engine.Execute(query);
  GPL_CHECK(result.ok()) << query.name << " under " << EngineModeName(mode)
                         << ": " << result.status().ToString();
  return result.take();
}

struct QueryCase {
  const char* label;
  LogicalQuery (*make)();
};

LogicalQuery MakeQ14() { return queries::Q14(); }

const QueryCase kQueries[] = {
    {"Q5", queries::Q5},   {"Q7", queries::Q7}, {"Q8", queries::Q8},
    {"Q9", queries::Q9},   {"Q14", MakeQ14},
};

// ---- The oracle invariant: fused == KBE, bit for bit, at every thread and
// ---- shard count.

class FusedBitIdentityTest : public ::testing::TestWithParam<QueryCase> {};

TEST_P(FusedBitIdentityTest, MatchesKbeAcrossThreadsAndShards) {
  const QueryCase& qc = GetParam();
  const LogicalQuery query = qc.make();
  const QueryResult oracle =
      RunMode(SmallDb(), query, EngineMode::kKbe, /*host_threads=*/1,
              /*shards=*/1);
  for (int threads : {1, 8}) {
    for (int shards : {1, 4}) {
      SCOPED_TRACE(std::string(qc.label) + " threads=" +
                   std::to_string(threads) + " shards=" +
                   std::to_string(shards));
      const QueryResult fused =
          RunMode(SmallDb(), query, EngineMode::kFused, threads, shards);
      ExpectTablesBitIdentical(oracle.table, fused.table);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Queries, FusedBitIdentityTest,
                         ::testing::ValuesIn(kQueries),
                         [](const ::testing::TestParamInfo<QueryCase>& info) {
                           return std::string(info.param.label);
                         });

// ---- Fusion must actually fire and be observable ----

TEST(FusedEngineTest, FusionFiresAndMetricsCount) {
  // At MediumDb volume the tuner picks fused chains for Q5 (established by
  // bench_fusion_ablation); the counters must reflect that.
  const QueryResult fused =
      RunMode(MediumDb(), queries::Q5(), EngineMode::kFused, 0, 1);
  EXPECT_GT(fused.metrics.fused_segments, 0);
  EXPECT_GT(fused.metrics.fused_launches_saved, 0);
  EXPECT_GT(fused.metrics.fused_bytes_avoided, 0);
}

TEST(FusedEngineTest, PinnedKnobsForceFusionWithoutCostModel) {
  // --tile/--wg pins disable the tuner; fused mode then force-fuses every
  // legal chain, so the counters must still be live.
  EngineOptions options;
  options.mode = EngineMode::kFused;
  options.exec.use_cost_model = false;
  options.exec.overrides.tile_bytes = MiB(1);
  Engine engine(&SmallDb(), options);
  Result<QueryResult> fused = engine.Execute(queries::Q5());
  ASSERT_TRUE(fused.ok()) << fused.status().ToString();
  EXPECT_GT(fused->metrics.fused_segments, 0);
  EXPECT_GT(fused->metrics.fused_launches_saved, 0);

  const QueryResult oracle =
      RunMode(SmallDb(), queries::Q5(), EngineMode::kKbe, 1, 1);
  ExpectTablesBitIdentical(oracle.table, fused->table);
}

TEST(FusedEngineTest, NonFusedModesReportZeroFusion) {
  const QueryResult gpl =
      RunMode(SmallDb(), queries::Q5(), EngineMode::kGpl, 0, 1);
  EXPECT_EQ(gpl.metrics.fused_segments, 0);
  EXPECT_EQ(gpl.metrics.fused_launches_saved, 0);
  EXPECT_EQ(gpl.metrics.fused_bytes_avoided, 0);
}

TEST(FusedEngineTest, ShardedRunAggregatesFusionCounters) {
  const QueryResult single =
      RunMode(MediumDb(), queries::Q5(), EngineMode::kFused, 0, 1);
  const QueryResult sharded =
      RunMode(MediumDb(), queries::Q5(), EngineMode::kFused, 0, 4);
  ASSERT_GT(single.metrics.fused_segments, 0);
  // Each shard runs its own fused segments; the merged totals must count
  // all of them (not just one shard's).
  EXPECT_GE(sharded.metrics.fused_segments, single.metrics.fused_segments);
  EXPECT_GT(sharded.metrics.fused_launches_saved, 0);
}

// ---- EXPLAIN ANALYZE surface ----

TEST(FusedExplainAnalyzeTest, ReportsEngineAndFusionPerSegment) {
  EngineOptions options;
  options.mode = EngineMode::kFused;
  Engine engine(&MediumDb(), options);
  Result<ExplainAnalyzeReport> report = ExplainAnalyze(engine, queries::Q5());
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  int fused_groups = 0;
  int launches_saved = 0;
  int64_t bytes_avoided = 0;
  bool saw_fused_engine = false;
  for (const ExplainAnalyzeSegment& seg : report->segments) {
    EXPECT_FALSE(seg.engine.empty())
        << "every segment must name its engine in fused mode";
    if (seg.engine == "fused") {
      saw_fused_engine = true;
      EXPECT_GT(seg.fused_groups, 0);
      EXPECT_GT(seg.launches_saved, 0);
    } else {
      EXPECT_EQ(seg.fused_groups, 0);
    }
    fused_groups += seg.fused_groups > 0 ? 1 : 0;
    launches_saved += seg.launches_saved;
    bytes_avoided += seg.fused_bytes_avoided;
  }
  EXPECT_TRUE(saw_fused_engine) << "Q5 must fuse at least one segment";
  // Per-segment numbers must add up to the run totals.
  EXPECT_EQ(fused_groups, report->metrics.fused_segments);
  EXPECT_EQ(launches_saved, report->metrics.fused_launches_saved);
  EXPECT_EQ(bytes_avoided, report->metrics.fused_bytes_avoided);

  // The rendered tree and JSON both carry the fusion surface.
  const std::string text = report->ToString();
  EXPECT_NE(text.find("[fused]"), std::string::npos);
  EXPECT_NE(text.find("fusion:"), std::string::npos);
  const std::string json = report->ToJson();
  EXPECT_NE(json.find("\"engine\":\"fused\""), std::string::npos);
  EXPECT_NE(json.find("\"launches_saved\""), std::string::npos);
}

TEST(FusedExplainAnalyzeTest, PredictedCyclesPresentForFusedSegments) {
  EngineOptions options;
  options.mode = EngineMode::kFused;
  Engine engine(&MediumDb(), options);
  Result<ExplainAnalyzeReport> report = ExplainAnalyze(engine, queries::Q5());
  ASSERT_TRUE(report.ok());
  for (const ExplainAnalyzeSegment& seg : report->segments) {
    if (seg.engine != "fused") continue;
    EXPECT_GT(seg.predicted_cycles, 0.0);
    EXPECT_GT(seg.actual_cycles, 0.0);
  }
}

}  // namespace
}  // namespace gpl
