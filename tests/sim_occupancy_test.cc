#include <gtest/gtest.h>

#include "common/math_util.h"
#include "sim/occupancy.h"

namespace gpl {
namespace sim {
namespace {

DeviceSpec Amd() { return DeviceSpec::AmdA10(); }

TEST(OccupancyTest, EmptyRequestYieldsEmptyResult) {
  const OccupancyResult r = ComputeOccupancy(Amd(), {});
  EXPECT_TRUE(r.active_slots.empty());
  EXPECT_TRUE(r.fit_unscaled);
}

TEST(OccupancyTest, LightKernelGetsFullRequest) {
  ResourceRequest req;
  req.private_bytes_per_item = 16;
  req.local_bytes_per_item = 0;
  req.requested_workgroups = 32;
  const OccupancyResult r = ComputeOccupancy(Amd(), {req});
  EXPECT_TRUE(r.fit_unscaled);
  EXPECT_EQ(r.active_slots[0], 32);
}

TEST(OccupancyTest, WorkgroupSlotsBindFirst) {
  const DeviceSpec d = Amd();  // 8 CUs x 16 wg = 128 slots
  ResourceRequest req;
  req.private_bytes_per_item = 1;
  req.requested_workgroups = 1000;
  const OccupancyResult r = ComputeOccupancy(d, {req});
  EXPECT_FALSE(r.fit_unscaled);
  EXPECT_EQ(r.binding_resource, 0);
  EXPECT_LE(r.active_slots[0], d.max_workgroups_per_cu * d.num_cus);
}

TEST(OccupancyTest, PrivateMemoryBinds) {
  const DeviceSpec d = Amd();  // 64 KB pm per CU, 64 work-items per wg
  ResourceRequest req;
  // One work-group uses 64 items x 4096 B = 256 KB: only 2 fit per device?
  // total pm = 8 x 64 KB = 512 KB -> 2 work-groups.
  req.private_bytes_per_item = 4096;
  req.requested_workgroups = 64;
  const OccupancyResult r = ComputeOccupancy(d, {req});
  EXPECT_FALSE(r.fit_unscaled);
  EXPECT_EQ(r.binding_resource, 1);
  EXPECT_LE(r.active_slots[0], 2);
  EXPECT_GE(r.active_slots[0], 1);
}

TEST(OccupancyTest, LocalMemoryBinds) {
  const DeviceSpec d = Amd();  // 32 KB lm per CU
  ResourceRequest req;
  req.private_bytes_per_item = 1;
  req.local_bytes_per_item = 512;  // 64 x 512 = 32 KB per wg: 1 per CU
  req.requested_workgroups = 64;
  const OccupancyResult r = ComputeOccupancy(d, {req});
  EXPECT_FALSE(r.fit_unscaled);
  EXPECT_EQ(r.binding_resource, 2);
  EXPECT_LE(r.active_slots[0], d.num_cus);
}

TEST(OccupancyTest, ConcurrentKernelsShareProportionally) {
  ResourceRequest heavy;
  heavy.private_bytes_per_item = 1024;
  heavy.requested_workgroups = 64;
  ResourceRequest light = heavy;
  light.requested_workgroups = 16;
  const OccupancyResult r = ComputeOccupancy(Amd(), {heavy, light});
  ASSERT_EQ(r.active_slots.size(), 2u);
  // 80 wgs x 64 items x 1 KB = 5 MB > 512 KB total: scaled by ~1/10.
  EXPECT_FALSE(r.fit_unscaled);
  EXPECT_GT(r.active_slots[0], r.active_slots[1]);
  EXPECT_GE(r.active_slots[1], 1);
  // Proportionality preserved roughly 4:1.
  EXPECT_NEAR(static_cast<double>(r.active_slots[0]) / r.active_slots[1], 4.0,
              2.1);
}

TEST(OccupancyTest, EveryKernelGetsAtLeastOneSlot) {
  std::vector<ResourceRequest> reqs(3);
  for (auto& r : reqs) {
    r.private_bytes_per_item = 8192;  // wildly oversubscribed
    r.requested_workgroups = 128;
  }
  const OccupancyResult r = ComputeOccupancy(Amd(), reqs);
  for (int slots : r.active_slots) EXPECT_GE(slots, 1);
}

TEST(OccupancyTest, SingleKernelSlotsRespectsLocalMemory) {
  const DeviceSpec d = Amd();
  KernelTimingDesc light;
  light.private_bytes_per_item = 32;
  light.local_bytes_per_item = 0;
  const int light_slots = SingleKernelSlots(d, light);
  EXPECT_EQ(light_slots, d.max_workgroups_per_cu * d.num_cus);

  KernelTimingDesc heavy = light;
  heavy.local_bytes_per_item = 256;  // 16 KB per wg -> 2 per CU
  const int heavy_slots = SingleKernelSlots(d, heavy);
  EXPECT_LT(heavy_slots, light_slots);
  EXPECT_GE(heavy_slots, d.num_cus);
}

TEST(OccupancyTest, NvidiaHasMoreSlots) {
  KernelTimingDesc desc;
  desc.private_bytes_per_item = 32;
  EXPECT_GT(SingleKernelSlots(DeviceSpec::NvidiaK40(), desc),
            SingleKernelSlots(DeviceSpec::AmdA10(), desc));
}

TEST(DeviceSpecTest, Table1Values) {
  const DeviceSpec amd = DeviceSpec::AmdA10();
  EXPECT_EQ(amd.num_cus, 8);
  EXPECT_EQ(amd.core_mhz, 720);
  EXPECT_EQ(amd.local_mem_per_cu, KiB(32));
  EXPECT_EQ(amd.cache_bytes, MiB(4));
  EXPECT_EQ(amd.concurrent_kernels, 2);
  EXPECT_TRUE(amd.has_packet_size_param);

  const DeviceSpec nv = DeviceSpec::NvidiaK40();
  EXPECT_EQ(nv.num_cus, 15);
  EXPECT_EQ(nv.core_mhz, 875);
  EXPECT_EQ(nv.local_mem_per_cu, KiB(48));
  EXPECT_EQ(nv.concurrent_kernels, 16);
  EXPECT_FALSE(nv.has_packet_size_param);
  EXPECT_EQ(nv.global_mem_bytes, GiB(12));
}

TEST(DeviceSpecTest, CyclesToMs) {
  const DeviceSpec amd = DeviceSpec::AmdA10();
  EXPECT_DOUBLE_EQ(amd.CyclesToMs(720000.0), 1.0);  // 720 MHz -> 720k cycles/ms
}

}  // namespace
}  // namespace sim
}  // namespace gpl
