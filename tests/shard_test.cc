#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "engine/metrics_json.h"
#include "model/exchange_model.h"
#include "queries/tpch_queries.h"
#include "service/query_service.h"
#include "shard/device_group.h"
#include "shard/partitioner.h"
#include "shard/sharded_executor.h"
#include "sim/link.h"
#include "test_util.h"

namespace gpl {
namespace {

using shard::DeviceGroup;
using shard::PartitionDatabase;
using shard::PartitionOptions;
using shard::PartitionScheme;
using shard::ShardedDatabase;
using shard::ShardedExecutor;
using shard::ShardOfKey;
using testing_util::SmallDb;

/// Bit-level table equality: raw physical buffers, not a tolerance compare.
/// Execution is simulated, so sharding must not change a single bit.
void ExpectTablesBitIdentical(const Table& expected, const Table& actual) {
  ASSERT_EQ(expected.num_columns(), actual.num_columns());
  ASSERT_EQ(expected.num_rows(), actual.num_rows());
  for (int64_t i = 0; i < expected.num_columns(); ++i) {
    SCOPED_TRACE("column " + expected.ColumnNameAt(i));
    EXPECT_EQ(expected.ColumnNameAt(i), actual.ColumnNameAt(i));
    const Column& e = expected.ColumnAt(i);
    const Column& a = actual.ColumnAt(i);
    ASSERT_EQ(e.type(), a.type());
    EXPECT_TRUE(e.data32() == a.data32());
    EXPECT_TRUE(e.data64() == a.data64());
    EXPECT_TRUE(e.dataf() == a.dataf());
  }
}

/// Calibrations are the expensive part of executor construction; share one
/// table per device across every test in this binary.
const std::map<std::string, model::CalibrationTable>& SharedCalibrations() {
  static const auto* calibrations = [] {
    auto* map = new std::map<std::string, model::CalibrationTable>();
    for (const sim::DeviceSpec& spec :
         {sim::DeviceSpec::AmdA10(), sim::DeviceSpec::NvidiaK40()}) {
      map->emplace(spec.name, model::CalibrationTable::Run(sim::Simulator(spec)));
    }
    return map;
  }();
  return *calibrations;
}

// ---- Partitioner ----

TEST(PartitionerTest, ShardOfKeyIsStableInRangeAndSpreads) {
  std::set<int> used;
  for (int64_t key = 0; key < 256; ++key) {
    const int s = ShardOfKey(key, 8);
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 8);
    EXPECT_EQ(s, ShardOfKey(key, 8));
    used.insert(s);
  }
  EXPECT_EQ(used.size(), 8u) << "dense keys must spread across shards";
}

TEST(PartitionerTest, RejectsNonPositiveShardCount) {
  PartitionOptions options;
  options.num_shards = 0;
  EXPECT_FALSE(PartitionDatabase(SmallDb(), options).ok());
}

TEST(PartitionerTest, HashShardsPreserveRowsOrderAndCoPartitionOrders) {
  PartitionOptions options;
  options.num_shards = 4;
  options.scheme = PartitionScheme::kHash;
  Result<ShardedDatabase> sharded = PartitionDatabase(SmallDb(), options);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  EXPECT_EQ(sharded->num_shards(), 4);
  EXPECT_EQ(sharded->fact_table(), "lineitem");
  EXPECT_TRUE(sharded->IsPartitioned("orders"));
  EXPECT_FALSE(sharded->IsPartitioned("customer"));

  const Table& source = *SmallDb().ByName("lineitem");
  int64_t total_rows = 0;
  std::set<int64_t> seen_rowids;
  for (const tpch::Database& shard : sharded->shards) {
    const Table* lineitem = shard.ByName("lineitem");
    ASSERT_NE(lineitem, nullptr);
    ASSERT_TRUE(lineitem->HasColumn(shard::kRowIdColumn));
    const Column& rowid = lineitem->GetColumn(shard::kRowIdColumn);
    const Column& orderkey = lineitem->GetColumn("l_orderkey");
    int64_t previous = -1;
    for (int64_t r = 0; r < lineitem->num_rows(); ++r) {
      const int64_t id = rowid.Int64At(r);
      EXPECT_GT(id, previous) << "shard rows must keep source order";
      previous = id;
      seen_rowids.insert(id);
      // Rows landed on the shard their join key hashes to, and the
      // co-partitioned orders rows are the only ones with that property.
      EXPECT_EQ(ShardOfKey(orderkey.AsInt64(r), 4),
                static_cast<int>(&shard - sharded->shards.data()));
    }
    total_rows += lineitem->num_rows();

    // Dimensions are broadcast: full copies sharing the source dictionary.
    const Table* nation = shard.ByName("nation");
    ASSERT_NE(nation, nullptr);
    EXPECT_EQ(nation->num_rows(), SmallDb().ByName("nation")->num_rows());
    EXPECT_EQ(nation->GetColumn("n_name").dictionary(),
              SmallDb().ByName("nation")->GetColumn("n_name").dictionary());
  }
  EXPECT_EQ(total_rows, source.num_rows());
  EXPECT_EQ(static_cast<int64_t>(seen_rowids.size()), source.num_rows());
  EXPECT_EQ(*seen_rowids.begin(), 0);
  EXPECT_EQ(*seen_rowids.rbegin(), source.num_rows() - 1);
}

TEST(PartitionerTest, RangeShardsAreContiguousAndNonPowerOfTwoWorks) {
  PartitionOptions options;
  options.num_shards = 3;  // deliberately not a power of two
  options.scheme = PartitionScheme::kRange;
  Result<ShardedDatabase> sharded = PartitionDatabase(SmallDb(), options);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  EXPECT_FALSE(sharded->IsPartitioned("orders"));  // broadcast under range

  int64_t next = 0;
  for (const tpch::Database& shard : sharded->shards) {
    const Column& rowid =
        shard.ByName("lineitem")->GetColumn(shard::kRowIdColumn);
    for (int64_t r = 0; r < rowid.size(); ++r) {
      EXPECT_EQ(rowid.Int64At(r), next++) << "ranges must be contiguous";
    }
  }
  EXPECT_EQ(next, SmallDb().ByName("lineitem")->num_rows());
}

TEST(PartitionerTest, SkewedShardCountsStillCoverEveryRow) {
  // 1 shard (degenerate) and 7 shards (non-power-of-two) both partition
  // without losing or duplicating rows.
  for (int n : {1, 7}) {
    PartitionOptions options;
    options.num_shards = n;
    Result<ShardedDatabase> sharded = PartitionDatabase(SmallDb(), options);
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
    int64_t total = 0;
    for (const tpch::Database& shard : sharded->shards) {
      total += shard.ByName("lineitem")->num_rows();
    }
    EXPECT_EQ(total, SmallDb().ByName("lineitem")->num_rows()) << n;
  }
}

// ---- Link ----

TEST(LinkTest, TransferMsIsLatencyPlusBandwidthAndZeroBytesFree) {
  sim::LinkSpec spec;
  spec.gbytes_per_sec = 16.0;
  spec.latency_us = 5.0;
  sim::Link link(spec);
  EXPECT_DOUBLE_EQ(link.TransferMs(0), 0.0);
  // 16 MB at 16 GB/s = 1 ms payload + 0.005 ms setup.
  EXPECT_DOUBLE_EQ(link.TransferMs(16'000'000), 1.005);

  EXPECT_DOUBLE_EQ(link.Transfer(16'000'000), 1.005);
  link.Record(1000, 0.5);  // externally priced
  EXPECT_EQ(link.total_bytes(), 16'001'000);
  EXPECT_EQ(link.transfer_count(), 2);
  EXPECT_DOUBLE_EQ(link.busy_ms(), 1.505);
}

// ---- Exchange model ----

TEST(ExchangeModelTest, BroadcastsDimensionsAndRepartitionsFactSizedInputs) {
  sim::LinkSpec link;
  std::vector<model::ExchangeInput> inputs;
  inputs.push_back({"nation", /*bytes=*/1000, /*rows=*/25, false});
  inputs.push_back({"orders", /*bytes=*/400'000, /*rows=*/1500, true});
  inputs.push_back({"bigside", /*bytes=*/9'000'000, /*rows=*/100'000, false});

  const int64_t fact_bytes = 1'000'000;
  model::ExchangePlan plan =
      model::PlanExchange(inputs, link, /*num_shards=*/4, fact_bytes);
  ASSERT_EQ(plan.decisions.size(), 3u);

  const model::ExchangeDecision& nation = plan.decisions[0];
  EXPECT_EQ(nation.strategy, model::ExchangeStrategy::kBroadcast);
  EXPECT_EQ(nation.bytes, 1000 * 3);

  const model::ExchangeDecision& orders = plan.decisions[1];
  EXPECT_EQ(orders.strategy, model::ExchangeStrategy::kCoPartitioned);
  EXPECT_EQ(orders.bytes, 0);
  EXPECT_DOUBLE_EQ(orders.ms, 0.0);

  // Broadcasting 9 MB to 3 peers (27 MB) loses to repartitioning both sides:
  // (9 MB + 1 MB) * 3/4 = 7.5 MB.
  const model::ExchangeDecision& big = plan.decisions[2];
  EXPECT_EQ(big.strategy, model::ExchangeStrategy::kRepartition);
  EXPECT_EQ(big.bytes, (9'000'000 + fact_bytes) * 3 / 4);

  EXPECT_EQ(plan.total_bytes, nation.bytes + big.bytes);
  EXPECT_DOUBLE_EQ(plan.total_ms, nation.ms + big.ms);
}

// ---- Device list parsing ----

TEST(DeviceListTest, ParsesNamesAndRejectsEmptyTokens) {
  Result<std::vector<sim::DeviceSpec>> list = ParseDeviceList("amd,nvidia,amd");
  ASSERT_TRUE(list.ok()) << list.status().ToString();
  ASSERT_EQ(list->size(), 3u);
  EXPECT_EQ((*list)[0].name, sim::DeviceSpec::AmdA10().name);
  EXPECT_EQ((*list)[1].name, sim::DeviceSpec::NvidiaK40().name);

  EXPECT_FALSE(ParseDeviceList("").ok());
  EXPECT_FALSE(ParseDeviceList("amd,,nvidia").ok());
  EXPECT_FALSE(ParseDeviceList("amd,tpu").ok());
}

// ---- Device group ----

TEST(DeviceGroupTest, HomogeneousAndToString) {
  DeviceGroup group = DeviceGroup::Homogeneous(sim::DeviceSpec::AmdA10(), 4);
  EXPECT_EQ(group.size(), 4);
  EXPECT_NE(group.ToString().find("x4"), std::string::npos);
  EXPECT_NE(group.ToString().find(group.link.name), std::string::npos);
}

// ---- Bit-identity of sharded execution ----

struct ShardedTruth {
  std::string name;
  QueryResult single;
};

const std::vector<ShardedTruth>& SingleDeviceTruth(EngineMode mode) {
  static auto* cache = new std::map<EngineMode, std::vector<ShardedTruth>>();
  auto it = cache->find(mode);
  if (it != cache->end()) return it->second;
  EngineOptions options;
  options.mode = mode;
  options.calibration =
      &SharedCalibrations().at(sim::DeviceSpec::AmdA10().name);
  Engine engine(&SmallDb(), options);
  std::vector<ShardedTruth> truth;
  for (auto& [name, query] : queries::EvaluationSuite()) {
    Result<QueryResult> result = engine.Execute(query);
    GPL_CHECK(result.ok()) << name << ": " << result.status().ToString();
    truth.push_back({name, result.take()});
  }
  return cache->emplace(mode, std::move(truth)).first->second;
}

void ExpectShardedBitIdentical(const DeviceGroup& group,
                               PartitionScheme scheme, EngineMode mode) {
  PartitionOptions poptions;
  poptions.num_shards = group.size();
  poptions.scheme = scheme;
  Result<ShardedDatabase> sharded = PartitionDatabase(SmallDb(), poptions);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();

  EngineOptions options;
  options.mode = mode;
  ShardedExecutor executor(&SmallDb(), &*sharded, group, options,
                           &SharedCalibrations());

  const std::vector<ShardedTruth>& truth = SingleDeviceTruth(mode);
  const auto suite = queries::EvaluationSuite();
  ASSERT_EQ(suite.size(), truth.size());
  for (size_t qi = 0; qi < suite.size(); ++qi) {
    const ShardedTruth& t = truth[qi];
    SCOPED_TRACE(t.name + " on " + group.ToString() + " (" +
                 shard::PartitionSchemeName(scheme) + ")");
    Result<QueryResult> got = executor.Execute(suite[qi].second);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ExpectTablesBitIdentical(t.single.table, got->table);

    const QueryMetrics& m = got->metrics;
    EXPECT_EQ(m.num_shards, group.size());
    ASSERT_EQ(m.device_elapsed_ms.size(), static_cast<size_t>(group.size()));
    ASSERT_EQ(m.device_utilization.size(), static_cast<size_t>(group.size()));
    for (int i = 0; i < group.size(); ++i) {
      EXPECT_GT(m.device_elapsed_ms[static_cast<size_t>(i)], 0.0);
      EXPECT_LE(m.device_elapsed_ms[static_cast<size_t>(i)], m.elapsed_ms);
      EXPECT_GT(m.device_utilization[static_cast<size_t>(i)], 0.0);
      EXPECT_LE(m.device_utilization[static_cast<size_t>(i)], 1.0);
    }
    EXPECT_EQ(m.exchange_bytes, m.broadcast_bytes + m.shuffle_bytes);
    if (group.size() > 1) {
      EXPECT_GT(m.exchange_bytes, 0);
      EXPECT_GT(m.exchange_ms, 0.0);
      EXPECT_GT(m.merge_ms, 0.0);
    } else {
      // A 1-device group short-circuits to the plain path: no partitioning,
      // no exchange, no merge — zero sharding tax.
      EXPECT_EQ(m.exchange_bytes, 0);
      EXPECT_DOUBLE_EQ(m.exchange_ms, 0.0);
      EXPECT_DOUBLE_EQ(m.merge_ms, 0.0);
      EXPECT_FALSE(m.partial_combine);
    }
  }
}

TEST(ShardedBitIdentityTest, HomogeneousHashAllShardCounts) {
  for (int n : {1, 2, 4, 8}) {
    ExpectShardedBitIdentical(
        DeviceGroup::Homogeneous(sim::DeviceSpec::AmdA10(), n),
        PartitionScheme::kHash, EngineMode::kGpl);
  }
}

TEST(ShardedBitIdentityTest, HomogeneousRangePartitioning) {
  for (int n : {2, 4}) {
    ExpectShardedBitIdentical(
        DeviceGroup::Homogeneous(sim::DeviceSpec::AmdA10(), n),
        PartitionScheme::kRange, EngineMode::kGpl);
  }
}

TEST(ShardedBitIdentityTest, NonPowerOfTwoShardCounts) {
  for (int n : {3, 5}) {
    ExpectShardedBitIdentical(
        DeviceGroup::Homogeneous(sim::DeviceSpec::AmdA10(), n),
        PartitionScheme::kHash, EngineMode::kGpl);
  }
}

TEST(ShardedBitIdentityTest, MixedDeviceGroup) {
  DeviceGroup mixed;
  mixed.devices = {sim::DeviceSpec::AmdA10(), sim::DeviceSpec::NvidiaK40(),
                   sim::DeviceSpec::AmdA10(), sim::DeviceSpec::NvidiaK40()};
  ExpectShardedBitIdentical(mixed, PartitionScheme::kHash, EngineMode::kGpl);
}

TEST(ShardedBitIdentityTest, KbeModeShards) {
  ExpectShardedBitIdentical(
      DeviceGroup::Homogeneous(sim::DeviceSpec::AmdA10(), 2),
      PartitionScheme::kHash, EngineMode::kKbe);
}

TEST(ShardedExecutorTest, RepeatRunsAreDeterministic) {
  PartitionOptions poptions;
  poptions.num_shards = 4;
  Result<ShardedDatabase> sharded = PartitionDatabase(SmallDb(), poptions);
  ASSERT_TRUE(sharded.ok());
  DeviceGroup group = DeviceGroup::Homogeneous(sim::DeviceSpec::AmdA10(), 4);
  ShardedExecutor executor(&SmallDb(), &*sharded, group, EngineOptions{},
                           &SharedCalibrations());
  Result<QueryResult> first = executor.Execute(queries::Q5());
  Result<QueryResult> second = executor.Execute(queries::Q5());
  ASSERT_TRUE(first.ok() && second.ok());
  ExpectTablesBitIdentical(first->table, second->table);
  EXPECT_EQ(first->metrics.elapsed_ms, second->metrics.elapsed_ms);
  EXPECT_EQ(first->metrics.exchange_bytes, second->metrics.exchange_bytes);

  // The link accumulated both executions' traffic.
  EXPECT_EQ(executor.link().total_bytes(), 2 * first->metrics.exchange_bytes);
}

TEST(ShardedExecutorTest, ExplainRendersExchangeOperatorsInline) {
  PartitionOptions poptions;
  poptions.num_shards = 4;
  Result<ShardedDatabase> sharded = PartitionDatabase(SmallDb(), poptions);
  ASSERT_TRUE(sharded.ok());
  DeviceGroup group = DeviceGroup::Homogeneous(sim::DeviceSpec::AmdA10(), 4);
  ShardedExecutor executor(&SmallDb(), &*sharded, group, EngineOptions{},
                           &SharedCalibrations());

  // Q9's whole join tree above the fact scan partitions, so the aggregate
  // is pushed down: the plan gathers per-shard partials, and orders — joined
  // above the fact scan, co-partitioned on orderkey — runs distributed as an
  // in-place passthrough, zero bytes.
  Result<shard::DistributedExplain> q9 = executor.Explain(queries::Q9());
  ASSERT_TRUE(q9.ok()) << q9.status().ToString();
  EXPECT_EQ(q9->num_shards, 4);
  EXPECT_TRUE(q9->partial_aggregate);
  EXPECT_NE(q9->plan_text.find("Exchange["), std::string::npos)
      << q9->plan_text;
  EXPECT_NE(q9->plan_text.find("PartialAggregate"), std::string::npos)
      << q9->plan_text;
  bool saw_orders = false;
  bool saw_gather = false;
  for (const shard::ExchangeOpReport& ex : q9->exchanges) {
    EXPECT_GT(ex.predicted_ms, -1e-12);
    if (ex.table == "orders") {
      saw_orders = true;
      EXPECT_EQ(ex.kind, ExchangeKind::kPassthrough);
      EXPECT_EQ(ex.predicted_bytes, 0);
    }
    if (ex.kind == ExchangeKind::kGather) {
      saw_gather = true;
      EXPECT_GT(ex.predicted_bytes, 0);
    }
  }
  EXPECT_TRUE(saw_orders);
  EXPECT_TRUE(saw_gather);

  // At this scale Q5 plans a two-key join above the fact scan, which the
  // distribution classifier rejects: the stitch fallback still renders its
  // Exchange operators, with the gather shipping row-stitched partials.
  Result<shard::DistributedExplain> q5 = executor.Explain(queries::Q5());
  ASSERT_TRUE(q5.ok()) << q5.status().ToString();
  EXPECT_FALSE(q5->partial_aggregate);
  EXPECT_EQ(q5->plan_text.find("PartialAggregate"), std::string::npos)
      << q5->plan_text;
  ASSERT_FALSE(q5->exchanges.empty());
  EXPECT_EQ(q5->exchanges.back().kind, ExchangeKind::kGather);
  EXPECT_GT(q5->exchanges.back().predicted_bytes, 0);

  // Explain is pure planning: a 1-device group reports the plain plan with
  // no exchanges.
  DeviceGroup one = DeviceGroup::Homogeneous(sim::DeviceSpec::AmdA10(), 1);
  PartitionOptions pone;
  pone.num_shards = 1;
  Result<ShardedDatabase> sharded1 = PartitionDatabase(SmallDb(), pone);
  ASSERT_TRUE(sharded1.ok());
  ShardedExecutor single(&SmallDb(), &*sharded1, one, EngineOptions{},
                         &SharedCalibrations());
  Result<shard::DistributedExplain> plain = single.Explain(queries::Q5());
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  EXPECT_EQ(plain->num_shards, 1);
  EXPECT_TRUE(plain->exchanges.empty());
  EXPECT_EQ(plain->plan_text.find("Exchange["), std::string::npos);
}

TEST(ExchangeModelTest, TuneExchangeMatchesBruteForceArgmin) {
  // TuneExchange must pick exactly the strategy a brute-force sweep over
  // PriceExchange finds cheapest (by bytes, broadcast winning ties).
  const sim::LinkSpec link;
  const std::vector<int64_t> fact_sizes = {0, 1000, 1'000'000, 50'000'000};
  const std::vector<model::ExchangeInput> inputs = {
      {"tiny", 100, 10, false},
      {"mid", 500'000, 5000, false},
      {"big", 20'000'000, 200'000, false},
      {"copart", 500'000, 5000, true},
  };
  for (int num_shards : {2, 4, 8}) {
    for (int64_t fact_bytes : fact_sizes) {
      for (const model::ExchangeInput& input : inputs) {
        const model::ExchangeDecision got =
            model::TuneExchange(input, link, num_shards, fact_bytes);
        model::ExchangeStrategy best = model::ExchangeStrategy::kBroadcast;
        int64_t best_bytes =
            model::PriceExchange(input, best, link, num_shards, fact_bytes)
                .bytes;
        for (model::ExchangeStrategy s :
             {model::ExchangeStrategy::kCoPartitioned,
              model::ExchangeStrategy::kRepartition}) {
          if (s == model::ExchangeStrategy::kCoPartitioned &&
              !input.co_partitioned) {
            continue;
          }
          const int64_t bytes =
              model::PriceExchange(input, s, link, num_shards, fact_bytes)
                  .bytes;
          if (bytes < best_bytes) {
            best = s;
            best_bytes = bytes;
          }
        }
        EXPECT_EQ(got.strategy, best)
            << input.table << " shards=" << num_shards
            << " fact=" << fact_bytes;
        EXPECT_EQ(got.bytes, best_bytes);
      }
    }
  }
}

TEST(ShardedExecutorTest, MetricsJsonCarriesShardFields) {
  PartitionOptions poptions;
  poptions.num_shards = 2;
  Result<ShardedDatabase> sharded = PartitionDatabase(SmallDb(), poptions);
  ASSERT_TRUE(sharded.ok());
  DeviceGroup group = DeviceGroup::Homogeneous(sim::DeviceSpec::AmdA10(), 2);
  ShardedExecutor executor(&SmallDb(), &*sharded, group, EngineOptions{},
                           &SharedCalibrations());
  Result<QueryResult> got = executor.Execute(queries::Q14());
  ASSERT_TRUE(got.ok());

  MetricsJsonEntry entry;
  entry.query = "Q14";
  entry.mode = "gpl";
  entry.device = group.ToString();
  entry.metrics = got->metrics;
  const std::string json = QueryMetricsToJson(entry);
  EXPECT_NE(json.find("\"num_shards\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"exchange_bytes\""), std::string::npos);
  EXPECT_NE(json.find("\"merge_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"device_utilization\""), std::string::npos);

  // Single-device metrics stay free of shard fields (byte-stable JSON).
  Engine engine(&SmallDb(), EngineOptions{});
  Result<QueryResult> single = engine.Execute(queries::Q14());
  ASSERT_TRUE(single.ok());
  entry.metrics = single->metrics;
  EXPECT_EQ(QueryMetricsToJson(entry).find("num_shards"), std::string::npos);
}

// ---- Unified Execute API (ExecOptions routing) ----

TEST(EngineRoutingTest, ExecOptionsShardsRouteThroughShardedExecutor) {
  EngineOptions options;
  options.calibration =
      &SharedCalibrations().at(sim::DeviceSpec::AmdA10().name);
  Engine engine(&SmallDb(), options);

  // Plain call: single-device, no shard fields.
  Result<QueryResult> single = engine.Execute(queries::Q9());
  ASSERT_TRUE(single.ok()) << single.status().ToString();
  EXPECT_EQ(single->metrics.num_shards, 0);

  // shards > 1 routes through the engine's own ShardedExecutor and stays
  // bit-identical.
  ExecOptions exec = options.exec;
  exec.shards = 4;
  Result<QueryResult> sharded = engine.Execute(queries::Q9(), exec);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  EXPECT_EQ(sharded->metrics.num_shards, 4);
  EXPECT_TRUE(sharded->metrics.partial_combine);
  EXPECT_GT(sharded->metrics.exchange_bytes, 0);
  ExpectTablesBitIdentical(single->table, sharded->table);

  // shards == 1 is not a sharded execution: the plain path runs, with no
  // partitioning and no shard metrics.
  exec.shards = 1;
  Result<QueryResult> one = engine.Execute(queries::Q9(), exec);
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one->metrics.num_shards, 0);
  EXPECT_EQ(one->metrics.elapsed_ms, single->metrics.elapsed_ms);
  ExpectTablesBitIdentical(single->table, one->table);
}

TEST(EngineRoutingTest, DeviceListDefinesTheGroup) {
  EngineOptions options;
  options.calibration =
      &SharedCalibrations().at(sim::DeviceSpec::AmdA10().name);
  Engine engine(&SmallDb(), options);
  ExecOptions exec = options.exec;
  exec.device_list = {sim::DeviceSpec::AmdA10(), sim::DeviceSpec::NvidiaK40()};
  Result<QueryResult> got = engine.Execute(queries::Q14(), exec);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->metrics.num_shards, 2);
  ASSERT_EQ(got->metrics.device_elapsed_ms.size(), 2u);

  Result<QueryResult> single = engine.Execute(queries::Q14());
  ASSERT_TRUE(single.ok());
  ExpectTablesBitIdentical(single->table, got->table);
}

TEST(EngineRoutingTest, ShardedForSharesAProvidedShardedDatabase) {
  PartitionOptions poptions;
  poptions.num_shards = 2;
  Result<ShardedDatabase> sharded = PartitionDatabase(SmallDb(), poptions);
  ASSERT_TRUE(sharded.ok());

  EngineOptions options;
  options.calibration =
      &SharedCalibrations().at(sim::DeviceSpec::AmdA10().name);
  options.device_calibrations = &SharedCalibrations();
  options.sharded_db = &*sharded;
  Engine engine(&SmallDb(), options);

  ExecOptions exec = options.exec;
  exec.shards = 2;
  Result<QueryResult> got = engine.Execute(queries::Q5(), exec);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->metrics.num_shards, 2);

  // A mismatched shard count must not use the provided database; the engine
  // partitions its own copy instead of failing.
  exec.shards = 3;
  Result<QueryResult> three = engine.Execute(queries::Q5(), exec);
  ASSERT_TRUE(three.ok()) << three.status().ToString();
  EXPECT_EQ(three->metrics.num_shards, 3);
  ExpectTablesBitIdentical(got->table, three->table);
}

TEST(ShardedExecutorTest, PartialCombineFlagMatchesExplain) {
  // Execute must take exactly the merge strategy Explain predicts, for every
  // query of the suite (all five push their aggregate down today, but the
  // invariant is flag == plan, not flag == true).
  PartitionOptions poptions;
  poptions.num_shards = 2;
  Result<ShardedDatabase> sharded = PartitionDatabase(SmallDb(), poptions);
  ASSERT_TRUE(sharded.ok());
  DeviceGroup group = DeviceGroup::Homogeneous(sim::DeviceSpec::AmdA10(), 2);
  ShardedExecutor executor(&SmallDb(), &*sharded, group, EngineOptions{},
                           &SharedCalibrations());
  bool any_combine = false;
  for (auto& [name, query] : queries::EvaluationSuite()) {
    SCOPED_TRACE(name);
    Result<shard::DistributedExplain> plan = executor.Explain(query);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    Result<QueryResult> got = executor.Execute(query);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got->metrics.partial_combine, plan->partial_aggregate);
    any_combine = any_combine || got->metrics.partial_combine;
  }
  EXPECT_TRUE(any_combine)
      << "no query exercised the partial-aggregate pushdown";
}

// ---- Sharded service ----

TEST(ShardedServiceTest, ResultsBitIdenticalToSingleDevice) {
  service::ServiceOptions options;
  options.num_workers = 2;
  options.num_shards = 2;
  options.queue_capacity = 64;
  service::QueryService service(&SmallDb(), options);
  EXPECT_TRUE(service.sharded());
  EXPECT_EQ(service.device_group().size(), 2);

  std::vector<ShardedTruth> truth = SingleDeviceTruth(EngineMode::kGpl);
  std::vector<service::QueryHandle> handles;
  auto suite = queries::EvaluationSuite();
  for (int round = 0; round < 2; ++round) {
    for (auto& [name, query] : suite) {
      Result<service::QueryHandle> submitted = service.Submit(name, query);
      ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
      handles.push_back(submitted.take());
    }
  }
  for (size_t i = 0; i < handles.size(); ++i) {
    const ShardedTruth& t = truth[i % truth.size()];
    SCOPED_TRACE(t.name);
    const Result<QueryResult>& result = handles[i].Await();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectTablesBitIdentical(t.single.table, result->table);
    EXPECT_EQ(result->metrics.num_shards, 2);
    EXPECT_GT(result->metrics.exchange_bytes, 0);
  }
  service.Shutdown();

  const service::ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.completed, handles.size());
  EXPECT_GT(stats.exchange_bytes, 0u);
  ASSERT_EQ(stats.device_busy_ms.size(), 2u);
  ASSERT_EQ(stats.device_queries.size(), 2u);
  for (int i = 0; i < 2; ++i) {
    EXPECT_GT(stats.device_busy_ms[static_cast<size_t>(i)], 0.0);
    EXPECT_EQ(stats.device_queries[static_cast<size_t>(i)], handles.size());
  }
}

TEST(ShardedServiceTest, RetriesRecoverInjectedFaultsUnderSharding) {
  service::ServiceOptions options;
  options.num_workers = 2;
  options.num_shards = 2;
  options.queue_capacity = 64;
  options.fault.kernel_abort_rate = 0.01;
  options.fault.seed = 17;
  options.retry.max_attempts = 6;
  options.retry.initial_backoff_ms = 0.01;
  options.retry.max_backoff_ms = 0.1;
  service::QueryService service(&SmallDb(), options);

  std::vector<ShardedTruth> truth = SingleDeviceTruth(EngineMode::kGpl);
  std::vector<service::QueryHandle> handles;
  auto suite = queries::EvaluationSuite();
  for (int round = 0; round < 3; ++round) {
    for (auto& [name, query] : suite) {
      Result<service::QueryHandle> submitted = service.Submit(name, query);
      ASSERT_TRUE(submitted.ok());
      handles.push_back(submitted.take());
    }
  }
  size_t completed = 0;
  for (size_t i = 0; i < handles.size(); ++i) {
    const Result<QueryResult>& result = handles[i].Await();
    if (!result.ok()) continue;  // a query may exhaust its retry budget
    ++completed;
    // Whatever survives the chaos is still bit-identical to the truth.
    ExpectTablesBitIdentical(truth[i % truth.size()].single.table,
                             result->table);
  }
  service.Shutdown();
  const service::ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.completed, completed);
  EXPECT_EQ(stats.completed + stats.failed, stats.admitted);
  EXPECT_GT(completed, handles.size() / 2)
      << "retries should recover most transient faults";
}

}  // namespace
}  // namespace gpl
