#include <algorithm>
#include <map>
#include <numeric>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "engine/engine.h"
#include "engine/metrics_json.h"
#include "exec/exact_sum.h"
#include "exec/expr.h"
#include "model/exchange_model.h"
#include "plan/logical_plan.h"
#include "plan/physical_plan.h"
#include "queries/tpch_queries.h"
#include "service/query_service.h"
#include "shard/device_group.h"
#include "shard/partitioner.h"
#include "shard/sharded_executor.h"
#include "sim/link.h"
#include "storage/column.h"
#include "storage/table.h"
#include "storage/types.h"
#include "test_util.h"
#include "tpch/dbgen.h"

namespace gpl {
namespace {

using shard::DeviceGroup;
using shard::PartitionDatabase;
using shard::PartitionOptions;
using shard::PartitionScheme;
using shard::ShardedDatabase;
using shard::ShardedExecutor;
using shard::ShardOfKey;
using testing_util::SmallDb;

/// Bit-level table equality: raw physical buffers, not a tolerance compare.
/// Execution is simulated, so sharding must not change a single bit.
void ExpectTablesBitIdentical(const Table& expected, const Table& actual) {
  ASSERT_EQ(expected.num_columns(), actual.num_columns());
  ASSERT_EQ(expected.num_rows(), actual.num_rows());
  for (int64_t i = 0; i < expected.num_columns(); ++i) {
    SCOPED_TRACE("column " + expected.ColumnNameAt(i));
    EXPECT_EQ(expected.ColumnNameAt(i), actual.ColumnNameAt(i));
    const Column& e = expected.ColumnAt(i);
    const Column& a = actual.ColumnAt(i);
    ASSERT_EQ(e.type(), a.type());
    EXPECT_TRUE(e.data32() == a.data32());
    EXPECT_TRUE(e.data64() == a.data64());
    EXPECT_TRUE(e.dataf() == a.dataf());
  }
}

/// Calibrations are the expensive part of executor construction; share one
/// table per device across every test in this binary.
const std::map<std::string, model::CalibrationTable>& SharedCalibrations() {
  static const auto* calibrations = [] {
    auto* map = new std::map<std::string, model::CalibrationTable>();
    for (const sim::DeviceSpec& spec :
         {sim::DeviceSpec::AmdA10(), sim::DeviceSpec::NvidiaK40()}) {
      map->emplace(spec.name, model::CalibrationTable::Run(sim::Simulator(spec)));
    }
    return map;
  }();
  return *calibrations;
}

// ---- Partitioner ----

TEST(PartitionerTest, ShardOfKeyIsStableInRangeAndSpreads) {
  std::set<int> used;
  for (int64_t key = 0; key < 256; ++key) {
    const int s = ShardOfKey(key, 8);
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 8);
    EXPECT_EQ(s, ShardOfKey(key, 8));
    used.insert(s);
  }
  EXPECT_EQ(used.size(), 8u) << "dense keys must spread across shards";
}

TEST(PartitionerTest, RejectsNonPositiveShardCount) {
  PartitionOptions options;
  options.num_shards = 0;
  EXPECT_FALSE(PartitionDatabase(SmallDb(), options).ok());
}

TEST(PartitionerTest, HashShardsPreserveRowsOrderAndCoPartitionOrders) {
  PartitionOptions options;
  options.num_shards = 4;
  options.scheme = PartitionScheme::kHash;
  Result<ShardedDatabase> sharded = PartitionDatabase(SmallDb(), options);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  EXPECT_EQ(sharded->num_shards(), 4);
  EXPECT_EQ(sharded->fact_table(), "lineitem");
  EXPECT_TRUE(sharded->IsPartitioned("orders"));
  EXPECT_FALSE(sharded->IsPartitioned("customer"));

  const Table& source = *SmallDb().ByName("lineitem");
  int64_t total_rows = 0;
  std::set<int64_t> seen_rowids;
  for (const tpch::Database& shard : sharded->shards) {
    const Table* lineitem = shard.ByName("lineitem");
    ASSERT_NE(lineitem, nullptr);
    ASSERT_TRUE(lineitem->HasColumn(shard::kRowIdColumn));
    const Column& rowid = lineitem->GetColumn(shard::kRowIdColumn);
    const Column& orderkey = lineitem->GetColumn("l_orderkey");
    int64_t previous = -1;
    for (int64_t r = 0; r < lineitem->num_rows(); ++r) {
      const int64_t id = rowid.Int64At(r);
      EXPECT_GT(id, previous) << "shard rows must keep source order";
      previous = id;
      seen_rowids.insert(id);
      // Rows landed on the shard their join key hashes to, and the
      // co-partitioned orders rows are the only ones with that property.
      EXPECT_EQ(ShardOfKey(orderkey.AsInt64(r), 4),
                static_cast<int>(&shard - sharded->shards.data()));
    }
    total_rows += lineitem->num_rows();

    // Dimensions are broadcast: full copies sharing the source dictionary.
    const Table* nation = shard.ByName("nation");
    ASSERT_NE(nation, nullptr);
    EXPECT_EQ(nation->num_rows(), SmallDb().ByName("nation")->num_rows());
    EXPECT_EQ(nation->GetColumn("n_name").dictionary(),
              SmallDb().ByName("nation")->GetColumn("n_name").dictionary());
  }
  EXPECT_EQ(total_rows, source.num_rows());
  EXPECT_EQ(static_cast<int64_t>(seen_rowids.size()), source.num_rows());
  EXPECT_EQ(*seen_rowids.begin(), 0);
  EXPECT_EQ(*seen_rowids.rbegin(), source.num_rows() - 1);
}

TEST(PartitionerTest, RangeShardsAreContiguousAndNonPowerOfTwoWorks) {
  PartitionOptions options;
  options.num_shards = 3;  // deliberately not a power of two
  options.scheme = PartitionScheme::kRange;
  Result<ShardedDatabase> sharded = PartitionDatabase(SmallDb(), options);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  EXPECT_FALSE(sharded->IsPartitioned("orders"));  // broadcast under range

  int64_t next = 0;
  for (const tpch::Database& shard : sharded->shards) {
    const Column& rowid =
        shard.ByName("lineitem")->GetColumn(shard::kRowIdColumn);
    for (int64_t r = 0; r < rowid.size(); ++r) {
      EXPECT_EQ(rowid.Int64At(r), next++) << "ranges must be contiguous";
    }
  }
  EXPECT_EQ(next, SmallDb().ByName("lineitem")->num_rows());
}

TEST(PartitionerTest, SkewedShardCountsStillCoverEveryRow) {
  // 1 shard (degenerate) and 7 shards (non-power-of-two) both partition
  // without losing or duplicating rows.
  for (int n : {1, 7}) {
    PartitionOptions options;
    options.num_shards = n;
    Result<ShardedDatabase> sharded = PartitionDatabase(SmallDb(), options);
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
    int64_t total = 0;
    for (const tpch::Database& shard : sharded->shards) {
      total += shard.ByName("lineitem")->num_rows();
    }
    EXPECT_EQ(total, SmallDb().ByName("lineitem")->num_rows()) << n;
  }
}

// ---- Link ----

TEST(LinkTest, TransferMsIsLatencyPlusBandwidthAndZeroBytesFree) {
  sim::LinkSpec spec;
  spec.gbytes_per_sec = 16.0;
  spec.latency_us = 5.0;
  sim::Link link(spec);
  EXPECT_DOUBLE_EQ(link.TransferMs(0), 0.0);
  // 16 MB at 16 GB/s = 1 ms payload + 0.005 ms setup.
  EXPECT_DOUBLE_EQ(link.TransferMs(16'000'000), 1.005);

  EXPECT_DOUBLE_EQ(link.Transfer(16'000'000), 1.005);
  link.Record(1000, 0.5);  // externally priced
  EXPECT_EQ(link.total_bytes(), 16'001'000);
  EXPECT_EQ(link.transfer_count(), 2);
  EXPECT_DOUBLE_EQ(link.busy_ms(), 1.505);
}

// ---- Exchange model ----

TEST(ExchangeModelTest, BroadcastsDimensionsAndRepartitionsFactSizedInputs) {
  // Zero link latency makes modeled ms proportional to bytes, so the plan is
  // the pure byte argmin and the expectations below are exact arithmetic.
  sim::LinkSpec link;
  link.latency_us = 0.0;
  const int64_t fact_bytes = 1'000'000;

  // Dimensions-only plan: each relation's standalone repartition would drag
  // the whole fact spine with it, so everything broadcasts.
  {
    std::vector<model::ExchangeInput> inputs;
    inputs.push_back({"nation", /*bytes=*/1000, /*rows=*/25, false});
    inputs.push_back({"orders", /*bytes=*/400'000, /*rows=*/1500, true});
    model::ExchangePlan plan =
        model::PlanExchange(inputs, link, /*num_shards=*/4, fact_bytes);
    ASSERT_EQ(plan.decisions.size(), 2u);
    EXPECT_EQ(plan.decisions[0].strategy, model::ExchangeStrategy::kBroadcast);
    EXPECT_EQ(plan.decisions[0].bytes, 1000 * 3);
    EXPECT_EQ(plan.decisions[1].strategy,
              model::ExchangeStrategy::kCoPartitioned);
    EXPECT_EQ(plan.decisions[1].bytes, 0);
    EXPECT_FALSE(plan.has_spine);
    EXPECT_EQ(plan.total_bytes, 1000 * 3);
    EXPECT_EQ(plan.all_broadcast_bytes, 1000 * 3);
  }

  // A fact-sized input flips to repartition: broadcasting 9 MB to 3 peers
  // (27 MB) loses to shipping its outbound fraction plus the one spine
  // relocation, 9 MB * 3/4 + 1 MB * 3/4 = 7.5 MB. Once that relocation is
  // paid, the small dimension rides along for its own fraction (750 bytes
  // in one DMA beats three 1000-byte copies).
  {
    std::vector<model::ExchangeInput> inputs;
    inputs.push_back({"bigside", /*bytes=*/9'000'000, /*rows=*/100'000, false});
    inputs.push_back({"nation", /*bytes=*/1000, /*rows=*/25, false});
    inputs.push_back({"orders", /*bytes=*/400'000, /*rows=*/1500, true});
    model::ExchangePlan plan =
        model::PlanExchange(inputs, link, /*num_shards=*/4, fact_bytes);
    ASSERT_EQ(plan.decisions.size(), 3u);

    const model::ExchangeDecision& big = plan.decisions[0];
    EXPECT_EQ(big.strategy, model::ExchangeStrategy::kRepartition);
    EXPECT_EQ(big.bytes, (9'000'000 + fact_bytes) * 3 / 4);
    EXPECT_EQ(big.spine_bytes, fact_bytes * 3 / 4);

    const model::ExchangeDecision& nation = plan.decisions[1];
    EXPECT_EQ(nation.strategy, model::ExchangeStrategy::kRepartition);
    EXPECT_EQ(nation.bytes, 1000 * 3 / 4);
    EXPECT_EQ(nation.spine_bytes, 0);  // bigside already pays the relocation

    const model::ExchangeDecision& orders = plan.decisions[2];
    EXPECT_EQ(orders.strategy, model::ExchangeStrategy::kCoPartitioned);
    EXPECT_EQ(orders.bytes, 0);
    EXPECT_DOUBLE_EQ(orders.ms, 0.0);

    EXPECT_TRUE(plan.has_spine);
    EXPECT_EQ(plan.spine_table, "bigside");
    EXPECT_EQ(plan.spine_bytes, fact_bytes * 3 / 4);
    EXPECT_EQ(plan.total_bytes, big.bytes + nation.bytes);
    EXPECT_DOUBLE_EQ(plan.total_ms, big.ms + nation.ms);
    EXPECT_EQ(plan.all_broadcast_bytes, 9'000'000 * 3 + 1000 * 3);
    EXPECT_LT(plan.total_bytes, plan.all_broadcast_bytes);
  }
}

TEST(ExchangeModelTest, ChargesSpineRelocationOnceAcrossRepartitions) {
  // Two mid-sized dimensions, each with a known 4 MB attach spine. Charged
  // per relation (the old bug), repartitioning costs 2 x (0.9 + 3) = 7.8 MB
  // and loses to the 7.2 MB double broadcast; charged once, it costs
  // 0.9 + 0.9 + 3 = 4.8 MB and wins. The subset argmin must find that.
  sim::LinkSpec link;
  link.latency_us = 0.0;
  std::vector<model::ExchangeInput> inputs;
  inputs.push_back({"dim_a", /*bytes=*/1'200'000, /*rows=*/12'000, false,
                    /*spine_bytes=*/4'000'000});
  inputs.push_back({"dim_b", /*bytes=*/1'200'000, /*rows=*/12'000, false,
                    /*spine_bytes=*/4'000'000});
  model::ExchangePlan plan = model::PlanExchange(
      inputs, link, /*num_shards=*/4, /*fact_bytes=*/50'000'000);
  ASSERT_EQ(plan.decisions.size(), 2u);
  EXPECT_EQ(plan.decisions[0].strategy, model::ExchangeStrategy::kRepartition);
  EXPECT_EQ(plan.decisions[1].strategy, model::ExchangeStrategy::kRepartition);

  // Exactly one decision carries the relocation; totals count it once.
  const int64_t own = 1'200'000 * 3 / 4;
  const int64_t reloc = 4'000'000 * 3 / 4;
  EXPECT_EQ(plan.decisions[0].bytes, own + reloc);  // widest-tie: first pays
  EXPECT_EQ(plan.decisions[0].spine_bytes, reloc);
  EXPECT_EQ(plan.decisions[1].bytes, own);
  EXPECT_EQ(plan.decisions[1].spine_bytes, 0);
  EXPECT_TRUE(plan.has_spine);
  EXPECT_EQ(plan.spine_table, "dim_a");
  EXPECT_EQ(plan.spine_bytes, reloc);
  EXPECT_EQ(plan.total_bytes, 2 * own + reloc);
  EXPECT_EQ(plan.all_broadcast_bytes, 2 * 1'200'000 * 3);
  EXPECT_LT(plan.total_bytes, plan.all_broadcast_bytes);

  // The widest spine pays: with unequal spines the relocation is priced off
  // the larger one, and the narrow-spine relation ships its fraction alone.
  inputs[1].spine_bytes = 6'000'000;
  plan = model::PlanExchange(inputs, link, 4, 50'000'000);
  EXPECT_TRUE(plan.has_spine);
  EXPECT_EQ(plan.spine_table, "dim_b");
  EXPECT_EQ(plan.spine_bytes, 6'000'000 * 3 / 4);
  EXPECT_EQ(plan.decisions[0].bytes, own);
  EXPECT_EQ(plan.decisions[1].bytes, own + 6'000'000 * 3 / 4);

  // A lone repartition prices exactly like standalone PriceExchange.
  const model::ExchangeInput fat = {"fat", 9'000'000, 90'000, false,
                                    /*spine_bytes=*/4'000'000};
  const model::ExchangeDecision standalone = model::PriceExchange(
      fat, model::ExchangeStrategy::kRepartition, link, 4, 50'000'000);
  model::ExchangePlan lone = model::PlanExchange({fat}, link, 4, 50'000'000);
  ASSERT_EQ(lone.decisions.size(), 1u);
  EXPECT_EQ(lone.decisions[0].strategy, model::ExchangeStrategy::kRepartition);
  EXPECT_EQ(lone.decisions[0].bytes, standalone.bytes);
  EXPECT_DOUBLE_EQ(lone.decisions[0].ms, standalone.ms);
}

// ---- Device list parsing ----

TEST(DeviceListTest, ParsesNamesAndRejectsEmptyTokens) {
  Result<std::vector<sim::DeviceSpec>> list = ParseDeviceList("amd,nvidia,amd");
  ASSERT_TRUE(list.ok()) << list.status().ToString();
  ASSERT_EQ(list->size(), 3u);
  EXPECT_EQ((*list)[0].name, sim::DeviceSpec::AmdA10().name);
  EXPECT_EQ((*list)[1].name, sim::DeviceSpec::NvidiaK40().name);

  EXPECT_FALSE(ParseDeviceList("").ok());
  EXPECT_FALSE(ParseDeviceList("amd,,nvidia").ok());
  EXPECT_FALSE(ParseDeviceList("amd,tpu").ok());
}

// ---- Device group ----

TEST(DeviceGroupTest, HomogeneousAndToString) {
  DeviceGroup group = DeviceGroup::Homogeneous(sim::DeviceSpec::AmdA10(), 4);
  EXPECT_EQ(group.size(), 4);
  EXPECT_NE(group.ToString().find("x4"), std::string::npos);
  EXPECT_NE(group.ToString().find(group.link.name), std::string::npos);
}

// ---- Bit-identity of sharded execution ----

struct ShardedTruth {
  std::string name;
  QueryResult single;
};

const std::vector<ShardedTruth>& SingleDeviceTruth(EngineMode mode) {
  static auto* cache = new std::map<EngineMode, std::vector<ShardedTruth>>();
  auto it = cache->find(mode);
  if (it != cache->end()) return it->second;
  EngineOptions options;
  options.mode = mode;
  options.calibration =
      &SharedCalibrations().at(sim::DeviceSpec::AmdA10().name);
  Engine engine(&SmallDb(), options);
  std::vector<ShardedTruth> truth;
  for (auto& [name, query] : queries::EvaluationSuite()) {
    Result<QueryResult> result = engine.Execute(query);
    GPL_CHECK(result.ok()) << name << ": " << result.status().ToString();
    truth.push_back({name, result.take()});
  }
  return cache->emplace(mode, std::move(truth)).first->second;
}

void ExpectShardedBitIdentical(const DeviceGroup& group,
                               PartitionScheme scheme, EngineMode mode) {
  PartitionOptions poptions;
  poptions.num_shards = group.size();
  poptions.scheme = scheme;
  Result<ShardedDatabase> sharded = PartitionDatabase(SmallDb(), poptions);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();

  EngineOptions options;
  options.mode = mode;
  ShardedExecutor executor(&SmallDb(), &*sharded, group, options,
                           &SharedCalibrations());

  const std::vector<ShardedTruth>& truth = SingleDeviceTruth(mode);
  const auto suite = queries::EvaluationSuite();
  ASSERT_EQ(suite.size(), truth.size());
  for (size_t qi = 0; qi < suite.size(); ++qi) {
    const ShardedTruth& t = truth[qi];
    SCOPED_TRACE(t.name + " on " + group.ToString() + " (" +
                 shard::PartitionSchemeName(scheme) + ")");
    Result<QueryResult> got = executor.Execute(suite[qi].second);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ExpectTablesBitIdentical(t.single.table, got->table);

    const QueryMetrics& m = got->metrics;
    EXPECT_EQ(m.num_shards, group.size());
    ASSERT_EQ(m.device_elapsed_ms.size(), static_cast<size_t>(group.size()));
    ASSERT_EQ(m.device_utilization.size(), static_cast<size_t>(group.size()));
    for (int i = 0; i < group.size(); ++i) {
      EXPECT_GT(m.device_elapsed_ms[static_cast<size_t>(i)], 0.0);
      EXPECT_LE(m.device_elapsed_ms[static_cast<size_t>(i)], m.elapsed_ms);
      EXPECT_GT(m.device_utilization[static_cast<size_t>(i)], 0.0);
      EXPECT_LE(m.device_utilization[static_cast<size_t>(i)], 1.0);
    }
    EXPECT_EQ(m.exchange_bytes, m.broadcast_bytes + m.shuffle_bytes);
    if (group.size() > 1) {
      EXPECT_GT(m.exchange_bytes, 0);
      EXPECT_GT(m.exchange_ms, 0.0);
      EXPECT_GT(m.merge_ms, 0.0);
      // The merge strategies are mutually exclusive: the combine path
      // stitches nothing, the row-id stitch always concatenates the
      // per-shard boundary rows.
      if (m.partial_combine) {
        EXPECT_EQ(m.stitched_rows, 0);
      } else {
        EXPECT_GT(m.stitched_rows, 0);
      }
    } else {
      // A 1-device group short-circuits to the plain path: no partitioning,
      // no exchange, no merge — zero sharding tax.
      EXPECT_EQ(m.exchange_bytes, 0);
      EXPECT_DOUBLE_EQ(m.exchange_ms, 0.0);
      EXPECT_DOUBLE_EQ(m.merge_ms, 0.0);
      EXPECT_FALSE(m.partial_combine);
      EXPECT_EQ(m.stitched_rows, 0);
    }
  }
}

TEST(ShardedBitIdentityTest, HomogeneousHashAllShardCounts) {
  for (int n : {1, 2, 4, 8}) {
    ExpectShardedBitIdentical(
        DeviceGroup::Homogeneous(sim::DeviceSpec::AmdA10(), n),
        PartitionScheme::kHash, EngineMode::kGpl);
  }
}

TEST(ShardedBitIdentityTest, HomogeneousRangePartitioning) {
  for (int n : {2, 4}) {
    ExpectShardedBitIdentical(
        DeviceGroup::Homogeneous(sim::DeviceSpec::AmdA10(), n),
        PartitionScheme::kRange, EngineMode::kGpl);
  }
}

TEST(ShardedBitIdentityTest, NonPowerOfTwoShardCounts) {
  for (int n : {3, 5}) {
    ExpectShardedBitIdentical(
        DeviceGroup::Homogeneous(sim::DeviceSpec::AmdA10(), n),
        PartitionScheme::kHash, EngineMode::kGpl);
  }
}

TEST(ShardedBitIdentityTest, MixedDeviceGroup) {
  DeviceGroup mixed;
  mixed.devices = {sim::DeviceSpec::AmdA10(), sim::DeviceSpec::NvidiaK40(),
                   sim::DeviceSpec::AmdA10(), sim::DeviceSpec::NvidiaK40()};
  ExpectShardedBitIdentical(mixed, PartitionScheme::kHash, EngineMode::kGpl);
}

TEST(ShardedBitIdentityTest, KbeModeShards) {
  ExpectShardedBitIdentical(
      DeviceGroup::Homogeneous(sim::DeviceSpec::AmdA10(), 2),
      PartitionScheme::kHash, EngineMode::kKbe);
}

TEST(ShardedExecutorTest, RepeatRunsAreDeterministic) {
  PartitionOptions poptions;
  poptions.num_shards = 4;
  Result<ShardedDatabase> sharded = PartitionDatabase(SmallDb(), poptions);
  ASSERT_TRUE(sharded.ok());
  DeviceGroup group = DeviceGroup::Homogeneous(sim::DeviceSpec::AmdA10(), 4);
  ShardedExecutor executor(&SmallDb(), &*sharded, group, EngineOptions{},
                           &SharedCalibrations());
  Result<QueryResult> first = executor.Execute(queries::Q5());
  Result<QueryResult> second = executor.Execute(queries::Q5());
  ASSERT_TRUE(first.ok() && second.ok());
  ExpectTablesBitIdentical(first->table, second->table);
  EXPECT_EQ(first->metrics.elapsed_ms, second->metrics.elapsed_ms);
  EXPECT_EQ(first->metrics.exchange_bytes, second->metrics.exchange_bytes);

  // The link accumulated both executions' traffic.
  EXPECT_EQ(executor.link().total_bytes(), 2 * first->metrics.exchange_bytes);
}

TEST(ShardedExecutorTest, ExplainRendersExchangeOperatorsInline) {
  PartitionOptions poptions;
  poptions.num_shards = 4;
  Result<ShardedDatabase> sharded = PartitionDatabase(SmallDb(), poptions);
  ASSERT_TRUE(sharded.ok());
  DeviceGroup group = DeviceGroup::Homogeneous(sim::DeviceSpec::AmdA10(), 4);
  ShardedExecutor executor(&SmallDb(), &*sharded, group, EngineOptions{},
                           &SharedCalibrations());

  // Q9's whole join tree above the fact scan partitions, so the aggregate
  // is pushed down: the plan gathers per-shard partials, and orders — joined
  // above the fact scan, co-partitioned on orderkey — runs distributed as an
  // in-place passthrough, zero bytes.
  Result<shard::DistributedExplain> q9 = executor.Explain(queries::Q9());
  ASSERT_TRUE(q9.ok()) << q9.status().ToString();
  EXPECT_EQ(q9->num_shards, 4);
  EXPECT_TRUE(q9->partial_aggregate);
  EXPECT_NE(q9->plan_text.find("Exchange["), std::string::npos)
      << q9->plan_text;
  EXPECT_NE(q9->plan_text.find("PartialAggregate"), std::string::npos)
      << q9->plan_text;
  bool saw_orders = false;
  bool saw_gather = false;
  for (const shard::ExchangeOpReport& ex : q9->exchanges) {
    EXPECT_GT(ex.predicted_ms, -1e-12);
    if (ex.table == "orders") {
      saw_orders = true;
      EXPECT_EQ(ex.kind, ExchangeKind::kPassthrough);
      EXPECT_EQ(ex.predicted_bytes, 0);
    }
    if (ex.kind == ExchangeKind::kGather) {
      saw_gather = true;
      EXPECT_GT(ex.predicted_bytes, 0);
    }
  }
  EXPECT_TRUE(saw_orders);
  EXPECT_TRUE(saw_gather);

  // At this scale Q5 plans a two-key join above the fact scan
  // ({l_orderkey, l_suppkey} = {o_orderkey, s_suppkey}). The classifier
  // proves it partition-preserving off the aligned orderkey pair — the
  // compound key only tightens the match — so the aggregate still pushes
  // down instead of falling back to the row-id stitch.
  Result<shard::DistributedExplain> q5 = executor.Explain(queries::Q5());
  ASSERT_TRUE(q5.ok()) << q5.status().ToString();
  EXPECT_TRUE(q5->partial_aggregate);
  EXPECT_NE(q5->plan_text.find("PartialAggregate"), std::string::npos)
      << q5->plan_text;
  ASSERT_FALSE(q5->exchanges.empty());
  EXPECT_EQ(q5->exchanges.back().kind, ExchangeKind::kGather);
  EXPECT_GT(q5->exchanges.back().predicted_bytes, 0);

  // Explain is pure planning: a 1-device group reports the plain plan with
  // no exchanges.
  DeviceGroup one = DeviceGroup::Homogeneous(sim::DeviceSpec::AmdA10(), 1);
  PartitionOptions pone;
  pone.num_shards = 1;
  Result<ShardedDatabase> sharded1 = PartitionDatabase(SmallDb(), pone);
  ASSERT_TRUE(sharded1.ok());
  ShardedExecutor single(&SmallDb(), &*sharded1, one, EngineOptions{},
                         &SharedCalibrations());
  Result<shard::DistributedExplain> plain = single.Explain(queries::Q5());
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  EXPECT_EQ(plain->num_shards, 1);
  EXPECT_TRUE(plain->exchanges.empty());
  EXPECT_EQ(plain->plan_text.find("Exchange["), std::string::npos);
}

TEST(ExchangeModelTest, TuneExchangeMatchesBruteForceArgmin) {
  // TuneExchange must pick exactly the strategy a brute-force sweep over
  // PriceExchange finds cheapest by modeled ms (bytes breaking ties,
  // broadcast winning what remains). The grid leans on small relations at
  // high shard counts — the latency-dominated corner where the ms argmin
  // diverges from the byte argmin (N-1 tiny copies vs one DMA).
  const sim::LinkSpec link;
  const std::vector<int64_t> fact_sizes = {0, 1000, 1'000'000, 50'000'000};
  const std::vector<model::ExchangeInput> inputs = {
      {"tiny", 64, 8, false},
      {"small", 4'096, 128, false},
      {"mid", 500'000, 5000, false},
      {"big", 20'000'000, 200'000, false},
      {"copart", 500'000, 5000, true},
      {"spined", 2'000'000, 20'000, false, /*spine_bytes=*/300'000},
  };
  int latency_flips = 0;  // repartition chosen despite moving more bytes
  for (int num_shards : {2, 4, 8, 16, 32, 64}) {
    for (int64_t fact_bytes : fact_sizes) {
      for (const model::ExchangeInput& input : inputs) {
        const model::ExchangeDecision got =
            model::TuneExchange(input, link, num_shards, fact_bytes);
        if (input.co_partitioned || num_shards <= 1) {
          EXPECT_EQ(got.strategy, model::ExchangeStrategy::kCoPartitioned);
          EXPECT_EQ(got.bytes, 0);
          continue;
        }
        model::ExchangeDecision best;
        bool first = true;
        for (model::ExchangeStrategy s :
             {model::ExchangeStrategy::kBroadcast,
              model::ExchangeStrategy::kRepartition}) {
          const model::ExchangeDecision candidate =
              model::PriceExchange(input, s, link, num_shards, fact_bytes);
          if (first || candidate.ms < best.ms ||
              (candidate.ms == best.ms && candidate.bytes < best.bytes)) {
            best = candidate;
            first = false;
          }
        }
        EXPECT_EQ(got.strategy, best.strategy)
            << input.table << " shards=" << num_shards
            << " fact=" << fact_bytes;
        EXPECT_EQ(got.bytes, best.bytes);
        EXPECT_DOUBLE_EQ(got.ms, best.ms);
        const model::ExchangeDecision bcast = model::PriceExchange(
            input, model::ExchangeStrategy::kBroadcast, link, num_shards,
            fact_bytes);
        if (got.strategy == model::ExchangeStrategy::kRepartition &&
            got.bytes > bcast.bytes) {
          ++latency_flips;
        }
      }
    }
  }
  // The grid must actually exercise the divergence: at least one small
  // relation crossing a high-latency link once beats N-1 tiny copies even
  // though it moves more bytes.
  EXPECT_GT(latency_flips, 0);
}

TEST(ShardedExecutorTest, MetricsJsonCarriesShardFields) {
  PartitionOptions poptions;
  poptions.num_shards = 2;
  Result<ShardedDatabase> sharded = PartitionDatabase(SmallDb(), poptions);
  ASSERT_TRUE(sharded.ok());
  DeviceGroup group = DeviceGroup::Homogeneous(sim::DeviceSpec::AmdA10(), 2);
  ShardedExecutor executor(&SmallDb(), &*sharded, group, EngineOptions{},
                           &SharedCalibrations());
  Result<QueryResult> got = executor.Execute(queries::Q14());
  ASSERT_TRUE(got.ok());

  MetricsJsonEntry entry;
  entry.query = "Q14";
  entry.mode = "gpl";
  entry.device = group.ToString();
  entry.metrics = got->metrics;
  const std::string json = QueryMetricsToJson(entry);
  EXPECT_NE(json.find("\"num_shards\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"exchange_bytes\""), std::string::npos);
  EXPECT_NE(json.find("\"exchange_all_broadcast_bytes\""), std::string::npos);
  EXPECT_NE(json.find("\"merge_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"stitched_rows\""), std::string::npos);
  EXPECT_NE(json.find("\"device_utilization\""), std::string::npos);

  // Single-device metrics stay free of shard fields (byte-stable JSON).
  Engine engine(&SmallDb(), EngineOptions{});
  Result<QueryResult> single = engine.Execute(queries::Q14());
  ASSERT_TRUE(single.ok());
  entry.metrics = single->metrics;
  EXPECT_EQ(QueryMetricsToJson(entry).find("num_shards"), std::string::npos);
}

// ---- Unified Execute API (ExecOptions routing) ----

TEST(EngineRoutingTest, ExecOptionsShardsRouteThroughShardedExecutor) {
  EngineOptions options;
  options.calibration =
      &SharedCalibrations().at(sim::DeviceSpec::AmdA10().name);
  Engine engine(&SmallDb(), options);

  // Plain call: single-device, no shard fields.
  Result<QueryResult> single = engine.Execute(queries::Q9());
  ASSERT_TRUE(single.ok()) << single.status().ToString();
  EXPECT_EQ(single->metrics.num_shards, 0);

  // shards > 1 routes through the engine's own ShardedExecutor and stays
  // bit-identical.
  ExecOptions exec = options.exec;
  exec.shards = 4;
  Result<QueryResult> sharded = engine.Execute(queries::Q9(), exec);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  EXPECT_EQ(sharded->metrics.num_shards, 4);
  EXPECT_TRUE(sharded->metrics.partial_combine);
  EXPECT_GT(sharded->metrics.exchange_bytes, 0);
  ExpectTablesBitIdentical(single->table, sharded->table);

  // shards == 1 is not a sharded execution: the plain path runs, with no
  // partitioning and no shard metrics.
  exec.shards = 1;
  Result<QueryResult> one = engine.Execute(queries::Q9(), exec);
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one->metrics.num_shards, 0);
  EXPECT_EQ(one->metrics.elapsed_ms, single->metrics.elapsed_ms);
  ExpectTablesBitIdentical(single->table, one->table);
}

TEST(EngineRoutingTest, DeviceListDefinesTheGroup) {
  EngineOptions options;
  options.calibration =
      &SharedCalibrations().at(sim::DeviceSpec::AmdA10().name);
  Engine engine(&SmallDb(), options);
  ExecOptions exec = options.exec;
  exec.device_list = {sim::DeviceSpec::AmdA10(), sim::DeviceSpec::NvidiaK40()};
  Result<QueryResult> got = engine.Execute(queries::Q14(), exec);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->metrics.num_shards, 2);
  ASSERT_EQ(got->metrics.device_elapsed_ms.size(), 2u);

  Result<QueryResult> single = engine.Execute(queries::Q14());
  ASSERT_TRUE(single.ok());
  ExpectTablesBitIdentical(single->table, got->table);
}

TEST(EngineRoutingTest, ShardedForSharesAProvidedShardedDatabase) {
  PartitionOptions poptions;
  poptions.num_shards = 2;
  Result<ShardedDatabase> sharded = PartitionDatabase(SmallDb(), poptions);
  ASSERT_TRUE(sharded.ok());

  EngineOptions options;
  options.calibration =
      &SharedCalibrations().at(sim::DeviceSpec::AmdA10().name);
  options.device_calibrations = &SharedCalibrations();
  options.sharded_db = &*sharded;
  Engine engine(&SmallDb(), options);

  ExecOptions exec = options.exec;
  exec.shards = 2;
  Result<QueryResult> got = engine.Execute(queries::Q5(), exec);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->metrics.num_shards, 2);

  // A mismatched shard count must not use the provided database; the engine
  // partitions its own copy instead of failing.
  exec.shards = 3;
  Result<QueryResult> three = engine.Execute(queries::Q5(), exec);
  ASSERT_TRUE(three.ok()) << three.status().ToString();
  EXPECT_EQ(three->metrics.num_shards, 3);
  ExpectTablesBitIdentical(got->table, three->table);
}

TEST(ShardedExecutorTest, PartialCombineFlagMatchesExplain) {
  // Execute must take exactly the merge strategy Explain predicts, for every
  // query of the suite (all five push their aggregate down today, but the
  // invariant is flag == plan, not flag == true).
  PartitionOptions poptions;
  poptions.num_shards = 2;
  Result<ShardedDatabase> sharded = PartitionDatabase(SmallDb(), poptions);
  ASSERT_TRUE(sharded.ok());
  DeviceGroup group = DeviceGroup::Homogeneous(sim::DeviceSpec::AmdA10(), 2);
  ShardedExecutor executor(&SmallDb(), &*sharded, group, EngineOptions{},
                           &SharedCalibrations());
  bool any_combine = false;
  for (auto& [name, query] : queries::EvaluationSuite()) {
    SCOPED_TRACE(name);
    Result<shard::DistributedExplain> plan = executor.Explain(query);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    Result<QueryResult> got = executor.Execute(query);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got->metrics.partial_combine, plan->partial_aggregate);
    any_combine = any_combine || got->metrics.partial_combine;
  }
  EXPECT_TRUE(any_combine)
      << "no query exercised the partial-aggregate pushdown";
}

// ---- Compound-key co-partitioning ----

/// Two-table database whose join needs BOTH key columns: every order carries
/// a matching row (okey2 = orderkey + 1000) and a decoy row (okey2 =
/// orderkey + 2000, weight 1e9) that an orderkey-only join would wrongly
/// pick up. Any mis-merged compound key shows up as a wildly wrong sum.
tpch::Database TwoKeyDb(const std::vector<int64_t>& orderkeys) {
  Column l_orderkey(DataType::kInt64);
  Column l_okey2(DataType::kInt64);
  Column l_price(DataType::kFloat64);
  Column o_orderkey(DataType::kInt64);
  Column o_okey2(DataType::kInt64);
  Column o_weight(DataType::kFloat64);
  for (const int64_t k : orderkeys) {
    for (int line = 0; line < 3; ++line) {
      l_orderkey.AppendInt64(k);
      l_okey2.AppendInt64(k + 1000);
      l_price.AppendDouble(static_cast<double>(k) * 1.25 + line * 0.5);
    }
    o_orderkey.AppendInt64(k);
    o_okey2.AppendInt64(k + 1000);
    o_weight.AppendDouble(static_cast<double>(k % 7 + 1));
    o_orderkey.AppendInt64(k);
    o_okey2.AppendInt64(k + 2000);  // decoy: matches on orderkey alone
    o_weight.AppendDouble(1e9);
  }
  tpch::Database db;
  db.lineitem = Table("lineitem");
  GPL_CHECK_OK(db.lineitem.AddColumn("l_orderkey", std::move(l_orderkey)));
  GPL_CHECK_OK(db.lineitem.AddColumn("l_okey2", std::move(l_okey2)));
  GPL_CHECK_OK(db.lineitem.AddColumn("l_price", std::move(l_price)));
  db.orders = Table("orders");
  GPL_CHECK_OK(db.orders.AddColumn("o_orderkey", std::move(o_orderkey)));
  GPL_CHECK_OK(db.orders.AddColumn("o_okey2", std::move(o_okey2)));
  GPL_CHECK_OK(db.orders.AddColumn("o_weight", std::move(o_weight)));
  return db;
}

/// lineitem JOIN orders on the compound key {orderkey, okey2}; `reversed`
/// flips the order the two JoinEdges list the key columns ({a,b} vs {b,a})
/// — the classifier's aligned-pair proof must not depend on key position.
LogicalQuery TwoKeyQuery(bool reversed) {
  LogicalQuery q;
  q.name = reversed ? "twokey_rev" : "twokey";
  BaseRelation lineitem;
  lineitem.table = "lineitem";
  lineitem.columns = {"l_orderkey", "l_okey2", "l_price"};
  BaseRelation orders;
  orders.table = "orders";
  orders.columns = {"o_orderkey", "o_okey2", "o_weight"};
  q.relations = {lineitem, orders};
  JoinEdge on_orderkey;
  on_orderkey.left = 0;
  on_orderkey.right = 1;
  on_orderkey.left_keys = {Col("l_orderkey")};
  on_orderkey.right_keys = {Col("o_orderkey")};
  JoinEdge on_okey2;
  on_okey2.left = 0;
  on_okey2.right = 1;
  on_okey2.left_keys = {Col("l_okey2")};
  on_okey2.right_keys = {Col("o_okey2")};
  if (reversed) {
    q.joins = {on_okey2, on_orderkey};
  } else {
    q.joins = {on_orderkey, on_okey2};
  }
  q.derived = {{"amount", Mul(Col("l_price"), Col("o_weight"))}};
  q.group_by = {{"l_okey2", Col("l_okey2")}};
  q.aggregates = {{AggSpec::kSum, Col("amount"), "total"},
                  {AggSpec::kMin, Col("l_price"), "min_price"},
                  {AggSpec::kMax, Col("amount"), "max_amount"}};
  q.order_by = {{"l_okey2", false}};
  return q;
}

/// First `count` positive keys that hash to `shard` of `num_shards` — lets a
/// test pin every row onto one shard (leaving the others empty).
std::vector<int64_t> KeysOnShard(int shard, int num_shards, int count) {
  std::vector<int64_t> keys;
  for (int64_t k = 1; static_cast<int>(keys.size()) < count; ++k) {
    if (ShardOfKey(k, num_shards) == shard) keys.push_back(k);
  }
  return keys;
}

/// Runs TwoKeyQuery over `orderkeys` at shard counts {1, 2, 4, 8}, in both
/// key orders, asserting the combine merge ran (zero stitched rows) and the
/// result is bit-identical to the single-device oracle.
void ExpectCompoundKeyCombine(const std::vector<int64_t>& orderkeys) {
  const tpch::Database db = TwoKeyDb(orderkeys);
  EngineOptions options;
  options.calibration =
      &SharedCalibrations().at(sim::DeviceSpec::AmdA10().name);
  Engine oracle(&db, options);
  for (const bool reversed : {false, true}) {
    const LogicalQuery query = TwoKeyQuery(reversed);
    Result<QueryResult> truth = oracle.Execute(query);
    ASSERT_TRUE(truth.ok()) << truth.status().ToString();
    ASSERT_GT(truth->table.num_rows(), 0);
    for (const int n : {1, 2, 4, 8}) {
      SCOPED_TRACE(query.name + " shards=" + std::to_string(n));
      PartitionOptions poptions;
      poptions.num_shards = n;
      Result<ShardedDatabase> sharded = PartitionDatabase(db, poptions);
      ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
      ShardedExecutor executor(
          &db, &*sharded,
          DeviceGroup::Homogeneous(sim::DeviceSpec::AmdA10(), n),
          EngineOptions{}, &SharedCalibrations());
      Result<QueryResult> got = executor.Execute(query);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ExpectTablesBitIdentical(truth->table, got->table);
      if (n > 1) {
        EXPECT_TRUE(got->metrics.partial_combine)
            << "compound-key join must prove co-partitioning";
        EXPECT_EQ(got->metrics.stitched_rows, 0);
      }
    }
  }
}

TEST(CompoundKeyShardingTest, KeyOrderPermutationsStayCombinable) {
  std::vector<int64_t> keys(24);
  std::iota(keys.begin(), keys.end(), int64_t{1});
  ExpectCompoundKeyCombine(keys);
}

TEST(CompoundKeyShardingTest, EmptyShardCombines) {
  // Every orderkey hashes to shard 0 of 2, so shard 1 holds zero lineitem
  // and zero (co-partitioned) orders rows; its empty partial must combine
  // cleanly and the empty-probe join must not derail the pushdown.
  const std::vector<int64_t> keys = KeysOnShard(0, 2, 8);
  PartitionOptions poptions;
  poptions.num_shards = 2;
  Result<ShardedDatabase> sharded = PartitionDatabase(TwoKeyDb(keys), poptions);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  EXPECT_EQ(sharded->shards[1].lineitem.num_rows(), 0);
  EXPECT_EQ(sharded->shards[1].orders.num_rows(), 0);
  ExpectCompoundKeyCombine(keys);
}

TEST(CompoundKeyShardingTest, AllRowsOnOneShardCombine) {
  // The opposite skew: at 4 shards all rows land on shard 3.
  ExpectCompoundKeyCombine(KeysOnShard(3, 4, 8));
}

TEST(CompoundKeyShardingTest, FewerDistinctKeysThanShards) {
  // Two distinct orderkeys spread across up to 8 shards: most shards are
  // empty and the group count is below the device count.
  ExpectCompoundKeyCombine({5, 6});
}

TEST(ShardedExecutorTest, ExpressionJoinKeyFallsBackToStitch) {
  // Add(l_orderkey, 0) equals o_orderkey row for row, so rows stay
  // co-located and per-shard joins see every match — but the classifier
  // only proves alignment for bare column pairs, so the plan must take the
  // row-id stitch merge, not the combine. This keeps the stitch path
  // covered now that every suite query pushes its aggregate down.
  LogicalQuery q;
  q.name = "expr_key";
  BaseRelation lineitem;
  lineitem.table = "lineitem";
  lineitem.columns = {"l_orderkey", "l_extendedprice"};
  BaseRelation orders;
  orders.table = "orders";
  orders.columns = {"o_orderkey", "o_orderdate"};
  q.relations = {lineitem, orders};
  JoinEdge edge;
  edge.left = 0;
  edge.right = 1;
  edge.left_keys = {Add(Col("l_orderkey"), LitInt(0))};
  edge.right_keys = {Col("o_orderkey")};
  q.joins = {edge};
  q.group_by = {{"o_year", YearOf(Col("o_orderdate"))}};
  q.aggregates = {{AggSpec::kSum, Col("l_extendedprice"), "revenue"}};
  q.order_by = {{"o_year", false}};

  EngineOptions options;
  options.calibration =
      &SharedCalibrations().at(sim::DeviceSpec::AmdA10().name);
  Engine oracle(&SmallDb(), options);
  Result<QueryResult> truth = oracle.Execute(q);
  ASSERT_TRUE(truth.ok()) << truth.status().ToString();

  for (const int n : {2, 4}) {
    SCOPED_TRACE("shards=" + std::to_string(n));
    PartitionOptions poptions;
    poptions.num_shards = n;
    Result<ShardedDatabase> sharded = PartitionDatabase(SmallDb(), poptions);
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
    ShardedExecutor executor(
        &SmallDb(), &*sharded,
        DeviceGroup::Homogeneous(sim::DeviceSpec::AmdA10(), n),
        EngineOptions{}, &SharedCalibrations());
    Result<QueryResult> got = executor.Execute(q);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_FALSE(got->metrics.partial_combine);
    EXPECT_GT(got->metrics.stitched_rows, 0);
    ExpectTablesBitIdentical(truth->table, got->table);
  }
}

// ---- Partial-gather estimate ----

TEST(PartialGatherEstimateTest, MinMaxPartialsCarryNoCountColumn) {
  PhysicalOp agg;
  agg.kind = PhysicalOp::Kind::kAggregate;
  agg.group_by = {{"g", Col("g")}};
  agg.est_rows = 10.0;
  const int64_t senders = 2;  // 3 shards: shard 0 keeps its partial local

  const auto estimate = [&agg](AggSpec::Func func) {
    AggSpec spec;
    spec.func = func;
    if (func != AggSpec::kCount) spec.arg = Col("x");
    spec.output_name = "a";
    agg.aggregates = {spec};
    return shard::EstimatePartialGatherBytes(agg, 3);
  };
  // One 8-byte group column plus per-aggregate partial state, per group row
  // per sending shard. Min/max ship the running value alone — pricing an
  // 8-byte count they never wire was the satellite bug.
  EXPECT_EQ(estimate(AggSpec::kMin), (8 + 8) * 10 * senders);
  EXPECT_EQ(estimate(AggSpec::kMax), (8 + 8) * 10 * senders);
  EXPECT_EQ(estimate(AggSpec::kCount), (8 + 8) * 10 * senders);
  const int64_t sum_state = 8 * (2 + ExactFloat64Sum::kDigits);
  EXPECT_EQ(estimate(AggSpec::kSum), (8 + sum_state) * 10 * senders);
  EXPECT_EQ(estimate(AggSpec::kAvg), (8 + sum_state) * 10 * senders);

  // A mixed list is the sum of its parts over the same group rows.
  agg.aggregates = {{AggSpec::kMin, Col("x"), "mn"},
                    {AggSpec::kSum, Col("x"), "s"}};
  EXPECT_EQ(shard::EstimatePartialGatherBytes(agg, 3),
            (8 + 8 + sum_state) * 10 * senders);
}

TEST(ShardedExecutorTest, GatherEstimateTracksMeasuredPartialBytes) {
  // The gather's predicted bytes must track what the combine merge actually
  // ships. A min/max-only aggregate is the sharp case: before the count fix
  // the estimate ran ~2x the wire bytes and fell out of this band.
  LogicalQuery q;
  q.name = "minmax_gather";
  BaseRelation lineitem;
  lineitem.table = "lineitem";
  lineitem.columns = {"l_returnflag", "l_extendedprice"};
  q.relations = {lineitem};
  q.group_by = {{"l_returnflag", Col("l_returnflag")}};
  q.aggregates = {{AggSpec::kMin, Col("l_extendedprice"), "min_price"},
                  {AggSpec::kMax, Col("l_extendedprice"), "max_price"}};
  q.order_by = {{"l_returnflag", false}};

  PartitionOptions poptions;
  poptions.num_shards = 4;
  Result<ShardedDatabase> sharded = PartitionDatabase(SmallDb(), poptions);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  ShardedExecutor executor(
      &SmallDb(), &*sharded,
      DeviceGroup::Homogeneous(sim::DeviceSpec::AmdA10(), 4), EngineOptions{},
      &SharedCalibrations());
  Result<shard::DistributedExplain> plan = executor.Explain(q);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_TRUE(plan->partial_aggregate);
  ASSERT_FALSE(plan->exchanges.empty());
  const shard::ExchangeOpReport& gather = plan->exchanges.back();
  ASSERT_EQ(gather.kind, ExchangeKind::kGather);
  ASSERT_GT(gather.predicted_bytes, 0);

  Result<QueryResult> got = executor.Execute(q);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(got->metrics.partial_combine);
  ASSERT_GT(got->metrics.shuffle_bytes, 0);
  const double ratio = static_cast<double>(got->metrics.shuffle_bytes) /
                       static_cast<double>(gather.predicted_bytes);
  EXPECT_GE(ratio, 0.65) << "measured " << got->metrics.shuffle_bytes
                         << " vs predicted " << gather.predicted_bytes;
  EXPECT_LE(ratio, 1.5) << "measured " << got->metrics.shuffle_bytes
                        << " vs predicted " << gather.predicted_bytes;
}

// ---- Sharded service ----

TEST(ShardedServiceTest, ResultsBitIdenticalToSingleDevice) {
  service::ServiceOptions options;
  options.num_workers = 2;
  options.num_shards = 2;
  options.queue_capacity = 64;
  service::QueryService service(&SmallDb(), options);
  EXPECT_TRUE(service.sharded());
  EXPECT_EQ(service.device_group().size(), 2);

  std::vector<ShardedTruth> truth = SingleDeviceTruth(EngineMode::kGpl);
  std::vector<service::QueryHandle> handles;
  auto suite = queries::EvaluationSuite();
  for (int round = 0; round < 2; ++round) {
    for (auto& [name, query] : suite) {
      Result<service::QueryHandle> submitted = service.Submit(name, query);
      ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
      handles.push_back(submitted.take());
    }
  }
  for (size_t i = 0; i < handles.size(); ++i) {
    const ShardedTruth& t = truth[i % truth.size()];
    SCOPED_TRACE(t.name);
    const Result<QueryResult>& result = handles[i].Await();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectTablesBitIdentical(t.single.table, result->table);
    EXPECT_EQ(result->metrics.num_shards, 2);
    EXPECT_GT(result->metrics.exchange_bytes, 0);
  }
  service.Shutdown();

  const service::ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.completed, handles.size());
  EXPECT_GT(stats.exchange_bytes, 0u);
  ASSERT_EQ(stats.device_busy_ms.size(), 2u);
  ASSERT_EQ(stats.device_queries.size(), 2u);
  for (int i = 0; i < 2; ++i) {
    EXPECT_GT(stats.device_busy_ms[static_cast<size_t>(i)], 0.0);
    EXPECT_EQ(stats.device_queries[static_cast<size_t>(i)], handles.size());
  }
}

TEST(ShardedServiceTest, RetriesRecoverInjectedFaultsUnderSharding) {
  service::ServiceOptions options;
  options.num_workers = 2;
  options.num_shards = 2;
  options.queue_capacity = 64;
  options.fault.kernel_abort_rate = 0.01;
  options.fault.seed = 17;
  options.retry.max_attempts = 6;
  options.retry.initial_backoff_ms = 0.01;
  options.retry.max_backoff_ms = 0.1;
  service::QueryService service(&SmallDb(), options);

  std::vector<ShardedTruth> truth = SingleDeviceTruth(EngineMode::kGpl);
  std::vector<service::QueryHandle> handles;
  auto suite = queries::EvaluationSuite();
  for (int round = 0; round < 3; ++round) {
    for (auto& [name, query] : suite) {
      Result<service::QueryHandle> submitted = service.Submit(name, query);
      ASSERT_TRUE(submitted.ok());
      handles.push_back(submitted.take());
    }
  }
  size_t completed = 0;
  for (size_t i = 0; i < handles.size(); ++i) {
    const Result<QueryResult>& result = handles[i].Await();
    if (!result.ok()) continue;  // a query may exhaust its retry budget
    ++completed;
    // Whatever survives the chaos is still bit-identical to the truth.
    ExpectTablesBitIdentical(truth[i % truth.size()].single.table,
                             result->table);
  }
  service.Shutdown();
  const service::ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.completed, completed);
  EXPECT_EQ(stats.completed + stats.failed, stats.admitted);
  EXPECT_GT(completed, handles.size() / 2)
      << "retries should recover most transient faults";
}

}  // namespace
}  // namespace gpl
