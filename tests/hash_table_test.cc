#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/random.h"
#include "exec/hash_table.h"

namespace gpl {
namespace {

TEST(JoinHashTableTest, EmptyTableFindsNothing) {
  JoinHashTable ht;
  std::vector<int64_t> rows;
  ht.Probe(42, &rows);
  EXPECT_TRUE(rows.empty());
  EXPECT_FALSE(ht.Contains(42));
  EXPECT_EQ(ht.num_entries(), 0);
}

TEST(JoinHashTableTest, BuildAndProbeSingleMatches) {
  JoinHashTable ht;
  ht.Build({10, 20, 30});
  std::vector<int64_t> rows;
  ht.Probe(20, &rows);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], 1);
  EXPECT_TRUE(ht.Contains(10));
  EXPECT_FALSE(ht.Contains(15));
}

TEST(JoinHashTableTest, DuplicateKeysReturnAllRows) {
  JoinHashTable ht;
  ht.Build({7, 8, 7, 9, 7});
  std::vector<int64_t> rows;
  ht.Probe(7, &rows);
  std::sort(rows.begin(), rows.end());
  EXPECT_EQ(rows, (std::vector<int64_t>{0, 2, 4}));
}

TEST(JoinHashTableTest, RowBaseOffsetsRows) {
  JoinHashTable ht;
  ht.Build({1, 2}, /*row_base=*/100);
  std::vector<int64_t> rows;
  ht.Probe(2, &rows);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], 101);
}

TEST(JoinHashTableTest, IncrementalInsertAcrossTiles) {
  JoinHashTable ht;
  ht.Insert({1, 2, 3}, 0);
  ht.Insert({3, 4}, 3);
  EXPECT_EQ(ht.num_entries(), 5);
  std::vector<int64_t> rows;
  ht.Probe(3, &rows);
  std::sort(rows.begin(), rows.end());
  EXPECT_EQ(rows, (std::vector<int64_t>{2, 3}));
}

TEST(JoinHashTableTest, RebuildClearsOldEntries) {
  JoinHashTable ht;
  ht.Build({1, 2, 3});
  ht.Build({9});
  EXPECT_FALSE(ht.Contains(1));
  EXPECT_TRUE(ht.Contains(9));
  EXPECT_EQ(ht.num_entries(), 1);
}

TEST(JoinHashTableTest, NegativeAndLargeKeys) {
  JoinHashTable ht;
  ht.Build({-5, 0, (1LL << 62), -(1LL << 40)});
  EXPECT_TRUE(ht.Contains(-5));
  EXPECT_TRUE(ht.Contains(0));
  EXPECT_TRUE(ht.Contains(1LL << 62));
  EXPECT_TRUE(ht.Contains(-(1LL << 40)));
  EXPECT_FALSE(ht.Contains(1));
}

TEST(JoinHashTableTest, PackKeysIsInjectiveOnPairs) {
  std::set<int64_t> packed;
  for (int32_t a = -3; a <= 3; ++a) {
    for (int32_t b = -3; b <= 3; ++b) {
      packed.insert(JoinHashTable::PackKeys(a, b));
    }
  }
  EXPECT_EQ(packed.size(), 49u);
}

TEST(JoinHashTableTest, ByteSizeGrowsWithEntries) {
  JoinHashTable small, large;
  std::vector<int64_t> few(100), many(10000);
  for (size_t i = 0; i < few.size(); ++i) few[i] = static_cast<int64_t>(i);
  for (size_t i = 0; i < many.size(); ++i) many[i] = static_cast<int64_t>(i);
  small.Build(few);
  large.Build(many);
  EXPECT_GT(large.byte_size(), small.byte_size());
  EXPECT_GE(small.byte_size(),
            static_cast<int64_t>(few.size() * 3 * sizeof(int64_t)));
}

TEST(JoinHashTableTest, StressRandomKeysAgainstReference) {
  Random rng(42);
  std::vector<int64_t> keys(5000);
  for (auto& k : keys) k = rng.Uniform(0, 999);
  JoinHashTable ht;
  ht.Build(keys);

  for (int64_t probe = 0; probe < 1000; probe += 37) {
    std::vector<int64_t> expected;
    for (size_t i = 0; i < keys.size(); ++i) {
      if (keys[i] == probe) expected.push_back(static_cast<int64_t>(i));
    }
    std::vector<int64_t> actual;
    ht.Probe(probe, &actual);
    std::sort(actual.begin(), actual.end());
    EXPECT_EQ(actual, expected) << "probe key " << probe;
  }
}

}  // namespace
}  // namespace gpl
