// Property test: random expression trees evaluated column-at-a-time by the
// library must agree with a straightforward row-at-a-time interpreter
// written independently here.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/random.h"
#include "exec/expr.h"
#include "test_util.h"

namespace gpl {
namespace {

/// A miniature row-wise interpreter over the same expression shapes the
/// fuzzer generates. Kept deliberately naive.
struct RowExpr {
  enum Kind {
    kColI,
    kColF,
    kLitI,
    kLitF,
    kAdd,
    kSub,
    kMul,
    kLt,
    kGe,
    kEq,
    kAnd,
    kOr,
    kNot,
    kCase
  };
  Kind kind;
  int64_t lit_int = 0;
  double lit_float = 0.0;
  std::unique_ptr<RowExpr> a, b, c;

  bool IsBool() const {
    return kind == kLt || kind == kGe || kind == kEq || kind == kAnd ||
           kind == kOr || kind == kNot;
  }

  // Returns the value as double; integer context truncates consistently with
  // the library (int64 arithmetic when neither side is float).
  double Eval(int64_t i_val, double f_val, bool* is_float) const {
    bool fa = false, fb = false, fc = false;
    switch (kind) {
      case kColI:
        *is_float = false;
        return static_cast<double>(i_val);
      case kColF:
        *is_float = true;
        return f_val;
      case kLitI:
        *is_float = false;
        return static_cast<double>(lit_int);
      case kLitF:
        *is_float = true;
        return lit_float;
      case kAdd:
      case kSub:
      case kMul: {
        const double va = a->Eval(i_val, f_val, &fa);
        const double vb = b->Eval(i_val, f_val, &fb);
        *is_float = fa || fb;
        double r = kind == kAdd ? va + vb : (kind == kSub ? va - vb : va * vb);
        if (!*is_float) r = static_cast<double>(static_cast<int64_t>(r));
        return r;
      }
      case kLt:
      case kGe:
      case kEq: {
        const double va = a->Eval(i_val, f_val, &fa);
        const double vb = b->Eval(i_val, f_val, &fb);
        *is_float = false;
        if (kind == kLt) return va < vb ? 1 : 0;
        if (kind == kGe) return va >= vb ? 1 : 0;
        return va == vb ? 1 : 0;
      }
      case kAnd:
      case kOr: {
        const bool va = a->Eval(i_val, f_val, &fa) != 0;
        const bool vb = b->Eval(i_val, f_val, &fb) != 0;
        *is_float = false;
        return (kind == kAnd ? (va && vb) : (va || vb)) ? 1 : 0;
      }
      case kNot:
        *is_float = false;
        return a->Eval(i_val, f_val, &fa) == 0 ? 1 : 0;
      case kCase: {
        const bool cond = a->Eval(i_val, f_val, &fa) != 0;
        const double vb = b->Eval(i_val, f_val, &fb);
        const double vc = c->Eval(i_val, f_val, &fc);
        *is_float = fb || fc;
        double r = cond ? vb : vc;
        if (!*is_float) r = static_cast<double>(static_cast<int64_t>(r));
        return r;
      }
    }
    return 0.0;
  }
};

/// Generates matching (library expression, row interpreter) pairs.
struct Generated {
  ExprPtr lib;
  std::unique_ptr<RowExpr> row;
  bool boolean;
};

Generated GenNumeric(Random& rng, int depth);

Generated GenBool(Random& rng, int depth) {
  Generated g;
  g.boolean = true;
  auto row = std::make_unique<RowExpr>();
  const int pick = depth <= 0 ? static_cast<int>(rng.Uniform(0, 2))
                              : static_cast<int>(rng.Uniform(0, 5));
  switch (pick) {
    case 0:
    case 1:
    case 2: {  // comparison of numerics
      Generated a = GenNumeric(rng, depth - 1);
      Generated b = GenNumeric(rng, depth - 1);
      if (pick == 0) {
        g.lib = Lt(a.lib, b.lib);
        row->kind = RowExpr::kLt;
      } else if (pick == 1) {
        g.lib = Ge(a.lib, b.lib);
        row->kind = RowExpr::kGe;
      } else {
        g.lib = Eq(a.lib, b.lib);
        row->kind = RowExpr::kEq;
      }
      row->a = std::move(a.row);
      row->b = std::move(b.row);
      break;
    }
    case 3: {  // and/or
      Generated a = GenBool(rng, depth - 1);
      Generated b = GenBool(rng, depth - 1);
      if (rng.Bernoulli(0.5)) {
        g.lib = And(a.lib, b.lib);
        row->kind = RowExpr::kAnd;
      } else {
        g.lib = Or(a.lib, b.lib);
        row->kind = RowExpr::kOr;
      }
      row->a = std::move(a.row);
      row->b = std::move(b.row);
      break;
    }
    default: {  // not
      Generated a = GenBool(rng, depth - 1);
      g.lib = Not(a.lib);
      row->kind = RowExpr::kNot;
      row->a = std::move(a.row);
      break;
    }
  }
  g.row = std::move(row);
  return g;
}

Generated GenNumeric(Random& rng, int depth) {
  Generated g;
  g.boolean = false;
  auto row = std::make_unique<RowExpr>();
  const int pick = depth <= 0 ? static_cast<int>(rng.Uniform(0, 3))
                              : static_cast<int>(rng.Uniform(0, 7));
  switch (pick) {
    case 0:
      g.lib = Col("i");
      row->kind = RowExpr::kColI;
      break;
    case 1:
      g.lib = Col("f");
      row->kind = RowExpr::kColF;
      break;
    case 2:
    case 3: {
      if (rng.Bernoulli(0.5)) {
        row->kind = RowExpr::kLitI;
        row->lit_int = rng.Uniform(-20, 20);
        g.lib = LitInt(row->lit_int);
      } else {
        row->kind = RowExpr::kLitF;
        row->lit_float = static_cast<double>(rng.Uniform(-200, 200)) / 8.0;
        g.lib = LitFloat(row->lit_float);
      }
      break;
    }
    case 4:
    case 5: {
      Generated a = GenNumeric(rng, depth - 1);
      Generated b = GenNumeric(rng, depth - 1);
      const int op = static_cast<int>(rng.Uniform(0, 2));
      if (op == 0) {
        g.lib = Add(a.lib, b.lib);
        row->kind = RowExpr::kAdd;
      } else if (op == 1) {
        g.lib = Sub(a.lib, b.lib);
        row->kind = RowExpr::kSub;
      } else {
        g.lib = Mul(a.lib, b.lib);
        row->kind = RowExpr::kMul;
      }
      row->a = std::move(a.row);
      row->b = std::move(b.row);
      break;
    }
    default: {  // case when
      Generated cond = GenBool(rng, depth - 1);
      Generated then_e = GenNumeric(rng, depth - 1);
      Generated else_e = GenNumeric(rng, depth - 1);
      g.lib = CaseWhen(cond.lib, then_e.lib, else_e.lib);
      row->kind = RowExpr::kCase;
      row->a = std::move(cond.row);
      row->b = std::move(then_e.row);
      row->c = std::move(else_e.row);
      break;
    }
  }
  g.row = std::move(row);
  return g;
}

class ExprFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(ExprFuzzTest, ColumnarMatchesRowWise) {
  Random rng(static_cast<uint64_t>(GetParam()) * 7919 + 17);

  // Input table with an int and a float column.
  Table t("t");
  Column ci(DataType::kInt32), cf(DataType::kFloat64);
  const int64_t rows = 64;
  for (int64_t r = 0; r < rows; ++r) {
    ci.AppendInt32(static_cast<int32_t>(rng.Uniform(-50, 50)));
    cf.AppendDouble(static_cast<double>(rng.Uniform(-400, 400)) / 16.0);
  }
  GPL_CHECK_OK(t.AddColumn("i", std::move(ci)));
  GPL_CHECK_OK(t.AddColumn("f", std::move(cf)));

  for (int trial = 0; trial < 30; ++trial) {
    const Generated g = rng.Bernoulli(0.5) ? GenBool(rng, 3)
                                           : GenNumeric(rng, 3);
    Column result = g.lib->Evaluate(t);
    ASSERT_EQ(result.size(), rows) << g.lib->ToString();
    for (int64_t r = 0; r < rows; ++r) {
      bool is_float = false;
      const double expected =
          g.row->Eval(t.GetColumn("i").Int32At(r),
                      t.GetColumn("f").DoubleAt(r), &is_float);
      const double actual = result.AsDouble(r);
      EXPECT_NEAR(actual, expected, 1e-9 * std::max(1.0, std::abs(expected)))
          << "row " << r << " of " << g.lib->ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprFuzzTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace gpl
