#include <gtest/gtest.h>

#include "storage/column.h"
#include "storage/dictionary.h"
#include "storage/table.h"

namespace gpl {
namespace {

TEST(DictionaryTest, InsertAssignsDenseCodes) {
  Dictionary dict;
  EXPECT_EQ(dict.GetOrInsert("ASIA"), 0);
  EXPECT_EQ(dict.GetOrInsert("EUROPE"), 1);
  EXPECT_EQ(dict.GetOrInsert("ASIA"), 0);  // idempotent
  EXPECT_EQ(dict.size(), 2);
}

TEST(DictionaryTest, LookupMissingReturnsMinusOne) {
  Dictionary dict;
  dict.GetOrInsert("ASIA");
  EXPECT_EQ(dict.Lookup("ASIA"), 0);
  EXPECT_EQ(dict.Lookup("MARS"), -1);
}

TEST(DictionaryTest, GetStringRoundTrips) {
  Dictionary dict;
  const int32_t code = dict.GetOrInsert("MIDDLE EAST");
  EXPECT_EQ(dict.GetString(code), "MIDDLE EAST");
}

TEST(ColumnTest, Int32AppendAndRead) {
  Column c(DataType::kInt32);
  c.AppendInt32(7);
  c.AppendInt32(-3);
  EXPECT_EQ(c.size(), 2);
  EXPECT_EQ(c.Int32At(0), 7);
  EXPECT_EQ(c.Int32At(1), -3);
  EXPECT_EQ(c.byte_size(), 8);
}

TEST(ColumnTest, TypeWidths) {
  EXPECT_EQ(TypeWidth(DataType::kInt32), 4);
  EXPECT_EQ(TypeWidth(DataType::kDate), 4);
  EXPECT_EQ(TypeWidth(DataType::kString), 4);
  EXPECT_EQ(TypeWidth(DataType::kInt64), 8);
  EXPECT_EQ(TypeWidth(DataType::kFloat64), 8);
}

TEST(ColumnTest, StringColumnUsesDictionary) {
  Column c(DataType::kString);
  c.AppendString("AIR");
  c.AppendString("RAIL");
  c.AppendString("AIR");
  EXPECT_EQ(c.size(), 3);
  EXPECT_EQ(c.StringAt(0), "AIR");
  EXPECT_EQ(c.StringAt(2), "AIR");
  EXPECT_EQ(c.Int32At(0), c.Int32At(2));
  EXPECT_EQ(c.dictionary()->size(), 2);
}

TEST(ColumnTest, AsDoubleWidensEveryType) {
  Column i(DataType::kInt32);
  i.AppendInt32(5);
  EXPECT_DOUBLE_EQ(i.AsDouble(0), 5.0);

  Column l(DataType::kInt64);
  l.AppendInt64(1LL << 40);
  EXPECT_DOUBLE_EQ(l.AsDouble(0), static_cast<double>(1LL << 40));

  Column f(DataType::kFloat64);
  f.AppendDouble(2.5);
  EXPECT_DOUBLE_EQ(f.AsDouble(0), 2.5);
  EXPECT_EQ(f.AsInt64(0), 2);
}

TEST(ColumnTest, GatherSelectsAndReorders) {
  Column c(DataType::kInt32);
  for (int i = 0; i < 5; ++i) c.AppendInt32(i * 10);
  Column g = c.Gather({4, 0, 2});
  ASSERT_EQ(g.size(), 3);
  EXPECT_EQ(g.Int32At(0), 40);
  EXPECT_EQ(g.Int32At(1), 0);
  EXPECT_EQ(g.Int32At(2), 20);
}

TEST(ColumnTest, GatherPreservesDictionary) {
  Column c(DataType::kString);
  c.AppendString("A");
  c.AppendString("B");
  Column g = c.Gather({1});
  EXPECT_EQ(g.dictionary().get(), c.dictionary().get());
  EXPECT_EQ(g.StringAt(0), "B");
}

TEST(ColumnTest, SliceTakesRange) {
  Column c(DataType::kFloat64);
  for (int i = 0; i < 10; ++i) c.AppendDouble(i);
  Column s = c.Slice(3, 4);
  ASSERT_EQ(s.size(), 4);
  EXPECT_DOUBLE_EQ(s.DoubleAt(0), 3.0);
  EXPECT_DOUBLE_EQ(s.DoubleAt(3), 6.0);
}

TEST(ColumnDeathTest, SliceOutOfRangeAborts) {
  Column c(DataType::kInt32);
  c.AppendInt32(1);
  EXPECT_DEATH(c.Slice(0, 2), "slice out of range");
}

TEST(ColumnTest, AppendColumnConcatenates) {
  Column a(DataType::kInt32), b(DataType::kInt32);
  a.AppendInt32(1);
  b.AppendInt32(2);
  ASSERT_TRUE(a.AppendColumn(b).ok());
  ASSERT_EQ(a.size(), 2);
  EXPECT_EQ(a.Int32At(1), 2);
}

TEST(ColumnTest, AppendColumnRejectsTypeMismatch) {
  Column a(DataType::kInt32), b(DataType::kFloat64);
  EXPECT_FALSE(a.AppendColumn(b).ok());
}

TEST(ColumnTest, AppendColumnRejectsForeignDictionary) {
  Column a(DataType::kString), b(DataType::kString);
  a.AppendString("X");
  b.AppendString("X");
  EXPECT_FALSE(a.AppendColumn(b).ok());  // distinct dictionaries
}

Table MakeTestTable() {
  Table t("orders_mini");
  Column key(DataType::kInt32), price(DataType::kFloat64);
  for (int i = 0; i < 6; ++i) {
    key.AppendInt32(i);
    price.AppendDouble(100.0 * i);
  }
  GPL_CHECK_OK(t.AddColumn("key", std::move(key)));
  GPL_CHECK_OK(t.AddColumn("price", std::move(price)));
  return t;
}

TEST(TableTest, BasicShape) {
  Table t = MakeTestTable();
  EXPECT_EQ(t.num_rows(), 6);
  EXPECT_EQ(t.num_columns(), 2);
  EXPECT_EQ(t.row_width(), 12);
  EXPECT_EQ(t.byte_size(), 6 * 4 + 6 * 8);
  EXPECT_TRUE(t.Validate().ok());
}

TEST(TableTest, DuplicateColumnRejected) {
  Table t = MakeTestTable();
  EXPECT_EQ(t.AddColumn("key", Column(DataType::kInt32)).code(),
            StatusCode::kAlreadyExists);
}

TEST(TableTest, ColumnLookup) {
  Table t = MakeTestTable();
  EXPECT_TRUE(t.HasColumn("price"));
  EXPECT_FALSE(t.HasColumn("ghost"));
  EXPECT_EQ(t.ColumnIndex("price"), 1);
  EXPECT_EQ(t.ColumnIndex("ghost"), -1);
  EXPECT_DOUBLE_EQ(t.GetColumn("price").DoubleAt(2), 200.0);
}

TEST(TableDeathTest, MissingColumnAborts) {
  Table t = MakeTestTable();
  EXPECT_DEATH(t.GetColumn("ghost"), "no such column");
}

TEST(TableTest, SliceAllColumns) {
  Table t = MakeTestTable();
  Table s = t.Slice(2, 3);
  EXPECT_EQ(s.num_rows(), 3);
  EXPECT_EQ(s.GetColumn("key").Int32At(0), 2);
  EXPECT_DOUBLE_EQ(s.GetColumn("price").DoubleAt(2), 400.0);
}

TEST(TableTest, GatherAllColumns) {
  Table t = MakeTestTable();
  Table g = t.Gather({5, 1});
  EXPECT_EQ(g.num_rows(), 2);
  EXPECT_EQ(g.GetColumn("key").Int32At(0), 5);
  EXPECT_DOUBLE_EQ(g.GetColumn("price").DoubleAt(1), 100.0);
}

TEST(TableTest, AppendTableSameSchema) {
  Table a = MakeTestTable();
  Table b = MakeTestTable();
  ASSERT_TRUE(a.AppendTable(b).ok());
  EXPECT_EQ(a.num_rows(), 12);
  EXPECT_TRUE(a.Validate().ok());
}

TEST(TableTest, AppendTableRejectsSchemaMismatch) {
  Table a = MakeTestTable();
  Table b("other");
  GPL_CHECK_OK(b.AddColumn("key", Column(DataType::kInt32)));
  EXPECT_FALSE(a.AppendTable(b).ok());
}

TEST(TableTest, ValidateDetectsRaggedColumns) {
  Table t("ragged");
  Column a(DataType::kInt32), b(DataType::kInt32);
  a.AppendInt32(1);
  GPL_CHECK_OK(t.AddColumn("a", std::move(a)));
  GPL_CHECK_OK(t.AddColumn("b", std::move(b)));
  EXPECT_FALSE(t.Validate().ok());
}

TEST(TableTest, ToStringRendersHeaderAndRows) {
  Table t = MakeTestTable();
  const std::string s = t.ToString(2);
  EXPECT_NE(s.find("orders_mini"), std::string::npos);
  EXPECT_NE(s.find("key | price"), std::string::npos);
  EXPECT_NE(s.find("more rows"), std::string::npos);
}

}  // namespace
}  // namespace gpl
