#include <gtest/gtest.h>

#include "exec/primitives.h"
#include "test_util.h"

namespace gpl {
namespace {

using testing_util::FloatTable;
using testing_util::Int32Table;

TEST(FilterKernelTest, KeepsMatchingRows) {
  KernelPtr k = MakeFilterKernel(Lt(Col("x"), LitInt(3)));
  Result<Table> out = k->Process(Int32Table("x", {5, 1, 2, 9, 0}));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 3);
  EXPECT_EQ(out->GetColumn("x").Int32At(0), 1);
  EXPECT_EQ(out->GetColumn("x").Int32At(2), 0);
  EXPECT_FALSE(k->blocking());
  EXPECT_EQ(k->name(), "k_map");
}

TEST(FilterKernelTest, EmptyWhenNothingMatches) {
  KernelPtr k = MakeFilterKernel(Gt(Col("x"), LitInt(100)));
  Result<Table> out = k->Process(Int32Table("x", {1, 2, 3}));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 0);
  EXPECT_EQ(out->num_columns(), 1);  // schema preserved
}

TEST(ProjectKernelTest, ComputesDerivedColumns) {
  KernelPtr k = MakeProjectKernel(
      {{"double_x", Mul(Col("x"), LitInt(2))}, {"x", Col("x")}});
  Result<Table> out = k->Process(Int32Table("x", {1, 2}));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_columns(), 2);
  EXPECT_EQ(out->GetColumn("double_x").Int64At(1), 4);
  EXPECT_EQ(out->GetColumn("x").Int32At(1), 2);
}

TEST(HashBuildProbeTest, JoinAcrossKernels) {
  auto state = std::make_shared<HashJoinState>();
  KernelPtr build = MakeHashBuildKernel({Col("bk")}, state);
  EXPECT_TRUE(build->blocking());

  Table build_side("b");
  Column bk(DataType::kInt32), payload(DataType::kFloat64);
  for (int i = 0; i < 4; ++i) {
    bk.AppendInt32(i);
    payload.AppendDouble(i * 10.0);
  }
  GPL_CHECK_OK(build_side.AddColumn("bk", std::move(bk)));
  GPL_CHECK_OK(build_side.AddColumn("payload", std::move(payload)));
  ASSERT_TRUE(build->Process(build_side).ok());
  EXPECT_EQ(state->table.num_entries(), 4);
  EXPECT_GT(build->timing().random_working_set_bytes, 0);

  KernelPtr probe = MakeHashProbeKernel({Col("pk")}, state, {"payload"});
  Result<Table> out = probe->Process(Int32Table("pk", {2, 2, 5, 0}));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 3);  // 2, 2, 0 match; 5 does not
  EXPECT_DOUBLE_EQ(out->GetColumn("payload").DoubleAt(0), 20.0);
  EXPECT_DOUBLE_EQ(out->GetColumn("payload").DoubleAt(2), 0.0);
}

TEST(HashBuildProbeTest, TileWiseBuildAccumulates) {
  auto state = std::make_shared<HashJoinState>();
  KernelPtr build = MakeHashBuildKernel({Col("bk")}, state);
  ASSERT_TRUE(build->Process(Int32Table("bk", {1, 2})).ok());
  ASSERT_TRUE(build->Process(Int32Table("bk", {3})).ok());
  EXPECT_EQ(state->table.num_entries(), 3);
  EXPECT_EQ(state->build_rows.num_rows(), 3);

  KernelPtr probe = MakeHashProbeKernel({Col("pk")}, state, {"bk"});
  Result<Table> out = probe->Process(Int32Table("pk", {3}));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 1);
  EXPECT_EQ(out->GetColumn("bk").Int32At(0), 3);
}

TEST(HashBuildProbeTest, CompositeKeys) {
  auto state = std::make_shared<HashJoinState>();
  Table build_side("b");
  Column a(DataType::kInt32), b(DataType::kInt32);
  a.AppendInt32(1);
  b.AppendInt32(2);
  a.AppendInt32(1);
  b.AppendInt32(3);
  GPL_CHECK_OK(build_side.AddColumn("a", std::move(a)));
  GPL_CHECK_OK(build_side.AddColumn("b", std::move(b)));
  KernelPtr build = MakeHashBuildKernel({Col("a"), Col("b")}, state);
  ASSERT_TRUE(build->Process(build_side).ok());

  Table probe_side("p");
  Column pa(DataType::kInt32), pb(DataType::kInt32);
  pa.AppendInt32(1);
  pb.AppendInt32(3);  // matches second entry only
  pa.AppendInt32(2);
  pb.AppendInt32(2);  // no match (a differs)
  GPL_CHECK_OK(probe_side.AddColumn("pa", std::move(pa)));
  GPL_CHECK_OK(probe_side.AddColumn("pb", std::move(pb)));
  KernelPtr probe =
      MakeHashProbeKernel({Col("pa"), Col("pb")}, state, {"b"});
  Result<Table> out = probe->Process(probe_side);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 1);
  EXPECT_EQ(out->GetColumn("b").Int32At(0), 3);
}

TEST(HashBuildTest, ResetClearsSharedState) {
  auto state = std::make_shared<HashJoinState>();
  KernelPtr build = MakeHashBuildKernel({Col("bk")}, state);
  ASSERT_TRUE(build->Process(Int32Table("bk", {1})).ok());
  build->Reset();
  EXPECT_EQ(state->table.num_entries(), 0);
  EXPECT_FALSE(state->build_rows_initialized);
}

TEST(AggregateKernelTest, GlobalSumWithheldUntilFinish) {
  KernelPtr agg = MakeAggregateKernel({}, {{AggSpec::kSum, Col("v"), "total"}});
  Result<Table> mid = agg->Process(FloatTable("v", {1.0, 2.0}));
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(mid->num_columns(), 0);  // withheld
  ASSERT_TRUE(agg->Process(FloatTable("v", {3.5})).ok());
  Result<Table> out = agg->Finish();
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 1);
  EXPECT_DOUBLE_EQ(out->GetColumn("total").DoubleAt(0), 6.5);
}

TEST(AggregateKernelTest, GroupedAggregates) {
  Table t("t");
  Column g(DataType::kInt32), v(DataType::kFloat64);
  const int32_t groups[] = {1, 2, 1, 2, 1};
  const double values[] = {1, 10, 2, 20, 3};
  for (int i = 0; i < 5; ++i) {
    g.AppendInt32(groups[i]);
    v.AppendDouble(values[i]);
  }
  GPL_CHECK_OK(t.AddColumn("g", std::move(g)));
  GPL_CHECK_OK(t.AddColumn("v", std::move(v)));

  KernelPtr agg = MakeAggregateKernel({{"g", Col("g")}},
                                      {{AggSpec::kSum, Col("v"), "sum"},
                                       {AggSpec::kCount, nullptr, "count"},
                                       {AggSpec::kAvg, Col("v"), "avg"},
                                       {AggSpec::kMin, Col("v"), "min"},
                                       {AggSpec::kMax, Col("v"), "max"}});
  ASSERT_TRUE(agg->Process(t).ok());
  Result<Table> out = agg->Finish();
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 2);  // groups sorted: 1, 2
  EXPECT_EQ(out->GetColumn("g").Int32At(0), 1);
  EXPECT_DOUBLE_EQ(out->GetColumn("sum").DoubleAt(0), 6.0);
  EXPECT_EQ(out->GetColumn("count").Int64At(0), 3);
  EXPECT_DOUBLE_EQ(out->GetColumn("avg").DoubleAt(0), 2.0);
  EXPECT_DOUBLE_EQ(out->GetColumn("min").DoubleAt(0), 1.0);
  EXPECT_DOUBLE_EQ(out->GetColumn("max").DoubleAt(0), 3.0);
  EXPECT_DOUBLE_EQ(out->GetColumn("sum").DoubleAt(1), 30.0);
}

TEST(AggregateKernelTest, StringGroupKeysPreserveDictionary) {
  Table t("t");
  Column g(DataType::kString), v(DataType::kFloat64);
  g.AppendString("FRANCE");
  v.AppendDouble(1.0);
  g.AppendString("GERMANY");
  v.AppendDouble(2.0);
  g.AppendString("FRANCE");
  v.AppendDouble(3.0);
  GPL_CHECK_OK(t.AddColumn("nation", std::move(g)));
  GPL_CHECK_OK(t.AddColumn("v", std::move(v)));
  KernelPtr agg = MakeAggregateKernel({{"nation", Col("nation")}},
                                      {{AggSpec::kSum, Col("v"), "sum"}});
  ASSERT_TRUE(agg->Process(t).ok());
  Result<Table> out = agg->Finish();
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 2);
  EXPECT_EQ(out->GetColumn("nation").StringAt(0), "FRANCE");
  EXPECT_DOUBLE_EQ(out->GetColumn("sum").DoubleAt(0), 4.0);
}

TEST(AggregateKernelTest, ResetAllowsReuse) {
  KernelPtr agg = MakeAggregateKernel({}, {{AggSpec::kSum, Col("v"), "s"}});
  ASSERT_TRUE(agg->Process(FloatTable("v", {5.0})).ok());
  agg->Reset();
  ASSERT_TRUE(agg->Process(FloatTable("v", {1.0})).ok());
  Result<Table> out = agg->Finish();
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ(out->GetColumn("s").DoubleAt(0), 1.0);
}

TEST(SortKernelTest, SortsAscendingAndDescending) {
  KernelPtr asc = MakeSortKernel({{"x", false}});
  ASSERT_TRUE(asc->Process(Int32Table("x", {3, 1})).ok());
  ASSERT_TRUE(asc->Process(Int32Table("x", {2})).ok());
  Result<Table> out = asc->Finish();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->GetColumn("x").Int32At(0), 1);
  EXPECT_EQ(out->GetColumn("x").Int32At(2), 3);
  EXPECT_TRUE(asc->blocking());

  KernelPtr desc = MakeSortKernel({{"x", true}});
  ASSERT_TRUE(desc->Process(Int32Table("x", {3, 1, 2})).ok());
  Result<Table> out2 = desc->Finish();
  ASSERT_TRUE(out2.ok());
  EXPECT_EQ(out2->GetColumn("x").Int32At(0), 3);
}

TEST(SortKernelTest, MultiKeyStableOrder) {
  Table t("t");
  Column a(DataType::kInt32), b(DataType::kFloat64);
  const int av[] = {2, 1, 2, 1};
  const double bv[] = {0.5, 9.0, 0.1, 3.0};
  for (int i = 0; i < 4; ++i) {
    a.AppendInt32(av[i]);
    b.AppendDouble(bv[i]);
  }
  GPL_CHECK_OK(t.AddColumn("a", std::move(a)));
  GPL_CHECK_OK(t.AddColumn("b", std::move(b)));
  KernelPtr sort = MakeSortKernel({{"a", false}, {"b", true}});
  ASSERT_TRUE(sort->Process(t).ok());
  Result<Table> out = sort->Finish();
  ASSERT_TRUE(out.ok());
  // a=1 rows first, within them b descending: 9.0, 3.0.
  EXPECT_EQ(out->GetColumn("a").Int32At(0), 1);
  EXPECT_DOUBLE_EQ(out->GetColumn("b").DoubleAt(0), 9.0);
  EXPECT_DOUBLE_EQ(out->GetColumn("b").DoubleAt(1), 3.0);
  EXPECT_DOUBLE_EQ(out->GetColumn("b").DoubleAt(2), 0.5);
}

TEST(SortKernelTest, StringKeysSortLexicographically) {
  Column s(DataType::kString);
  s.AppendString("GERMANY");
  s.AppendString("ARGENTINA");
  s.AppendString("FRANCE");
  Table t("t");
  GPL_CHECK_OK(t.AddColumn("n", std::move(s)));
  KernelPtr sort = MakeSortKernel({{"n", false}});
  ASSERT_TRUE(sort->Process(t).ok());
  Result<Table> out = sort->Finish();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->GetColumn("n").StringAt(0), "ARGENTINA");
  EXPECT_EQ(out->GetColumn("n").StringAt(2), "GERMANY");
}

TEST(KbePrimitivesTest, PrefixSumAndScatter) {
  Table t = Int32Table("x", {5, 1, 7, 2, 8});
  Column flags = ComputeFlags(t, Gt(Col("x"), LitInt(4)));  // 1 0 1 0 1
  int64_t total = 0;
  Column offsets = PrefixSum(flags, &total);
  EXPECT_EQ(total, 3);
  EXPECT_EQ(offsets.Int32At(0), 0);
  EXPECT_EQ(offsets.Int32At(2), 1);
  EXPECT_EQ(offsets.Int32At(4), 2);

  Table out = ScatterRows(t, flags, offsets);
  ASSERT_EQ(out.num_rows(), 3);
  EXPECT_EQ(out.GetColumn("x").Int32At(0), 5);
  EXPECT_EQ(out.GetColumn("x").Int32At(1), 7);
  EXPECT_EQ(out.GetColumn("x").Int32At(2), 8);
}

TEST(TimingDescTest, BlockingFlagsMatchPaper) {
  EXPECT_FALSE(FilterTiming(1.0).blocking);
  EXPECT_FALSE(ProjectTiming(1.0, 2).blocking);
  EXPECT_TRUE(PrefixSumTiming().blocking);
  EXPECT_TRUE(HashBuildTiming(0).blocking);
  EXPECT_FALSE(HashProbeTiming(0).blocking);
  EXPECT_FALSE(AggregateTiming(1.0, 1).blocking);  // k_reduce* is non-blocking
  EXPECT_TRUE(ScanAggregateTiming().blocking);     // KBE scan aggregation
  EXPECT_TRUE(SortTiming().blocking);
}

TEST(TimingDescTest, ProbeDeclaresRandomAccess) {
  const sim::KernelTimingDesc d = HashProbeTiming(1 << 20);
  EXPECT_GT(d.random_access_fraction, 0.0);
  EXPECT_EQ(d.random_working_set_bytes, 1 << 20);
}

}  // namespace
}  // namespace gpl
