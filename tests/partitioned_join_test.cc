#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "engine/engine.h"
#include "exec/partitioned_join.h"
#include "queries/tpch_queries.h"
#include "ref/reference_executor.h"
#include "test_util.h"

namespace gpl {
namespace {

using testing_util::Int32Table;
using testing_util::SmallDb;

TEST(PartitionedJoinStateTest, RequiresPowerOfTwoPartitions) {
  PartitionedJoinState ok(8);
  EXPECT_EQ(ok.num_partitions(), 8);
  EXPECT_DEATH(PartitionedJoinState bad(6), "power of two");
}

TEST(PartitionedJoinStateTest, RejectsEveryNonPowerOfTwoCount) {
  for (int n : {3, 5, 7, 12}) {
    EXPECT_DEATH(PartitionedJoinState bad(n), "power of two") << n;
  }
  // The boundary cases that are powers of two must construct fine.
  for (int n : {1, 2, 64}) {
    PartitionedJoinState ok(n);
    EXPECT_EQ(ok.num_partitions(), n);
  }
}

TEST(PartitionedJoinStateTest, PartitionOfIsStableAndInRange) {
  PartitionedJoinState state(16);
  for (int64_t key = -100; key <= 100; ++key) {
    const int p = state.PartitionOf(key);
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 16);
    EXPECT_EQ(p, state.PartitionOf(key));
  }
}

TEST(PartitionedJoinStateTest, SequentialKeysSpreadAcrossPartitions) {
  PartitionedJoinState state(8);
  std::set<int> used;
  for (int64_t key = 0; key < 64; ++key) used.insert(state.PartitionOf(key));
  EXPECT_EQ(used.size(), 8u) << "hash mixing must spread dense keys";
}

TEST(PartitionedJoinTest, MatchesSimpleHashJoin) {
  Random rng(99);
  Table build_side("b");
  Column bk(DataType::kInt32), payload(DataType::kFloat64);
  for (int i = 0; i < 5000; ++i) {
    bk.AppendInt32(static_cast<int32_t>(rng.Uniform(0, 999)));
    payload.AppendDouble(static_cast<double>(i));
  }
  GPL_CHECK_OK(build_side.AddColumn("bk", std::move(bk)));
  GPL_CHECK_OK(build_side.AddColumn("payload", std::move(payload)));

  Table probe_side("p");
  Column pk(DataType::kInt32);
  for (int i = 0; i < 2000; ++i) {
    pk.AppendInt32(static_cast<int32_t>(rng.Uniform(0, 1400)));
  }
  GPL_CHECK_OK(probe_side.AddColumn("pk", std::move(pk)));

  // Simple join.
  auto simple_state = std::make_shared<HashJoinState>();
  GPL_CHECK(MakeHashBuildKernel({Col("bk")}, simple_state)
                ->Process(build_side)
                .ok());
  Result<Table> simple = MakeHashProbeKernel({Col("pk")}, simple_state,
                                             {"payload"})
                             ->Process(probe_side);
  ASSERT_TRUE(simple.ok());

  // Partitioned join.
  auto part_state = std::make_shared<PartitionedJoinState>(8);
  GPL_CHECK(MakePartitionedBuildKernel({Col("bk")}, part_state)
                ->Process(build_side)
                .ok());
  Result<Table> partitioned =
      MakePartitionedProbeKernel({Col("pk")}, part_state, {"payload"})
          ->Process(probe_side);
  ASSERT_TRUE(partitioned.ok());

  // Same multiset of (pk, payload) pairs. Sort both for comparison.
  auto sorted = [](const Table& t) {
    KernelPtr sort = MakeSortKernel({{"pk", false}, {"payload", false}});
    GPL_CHECK(sort->Process(t).ok());
    Result<Table> out = sort->Finish();
    GPL_CHECK(out.ok());
    return out.take();
  };
  std::string diff;
  EXPECT_TRUE(ref::TablesEqual(sorted(*simple), sorted(*partitioned), &diff))
      << diff;
}

TEST(PartitionedJoinTest, TileWiseBuildAccumulates) {
  auto state = std::make_shared<PartitionedJoinState>(4);
  KernelPtr build = MakePartitionedBuildKernel({Col("bk")}, state);
  ASSERT_TRUE(build->Process(Int32Table("bk", {1, 2, 3})).ok());
  ASSERT_TRUE(build->Process(Int32Table("bk", {3, 4})).ok());
  int64_t total_entries = 0;
  for (int p = 0; p < 4; ++p) total_entries += state->table(p).num_entries();
  EXPECT_EQ(total_entries, 5);

  KernelPtr probe = MakePartitionedProbeKernel({Col("pk")}, state, {"bk"});
  Result<Table> out = probe->Process(Int32Table("pk", {3}));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 2);  // key 3 inserted twice
}

TEST(PartitionedJoinTest, CompositeKeys) {
  auto state = std::make_shared<PartitionedJoinState>(4);
  Table build_side("b");
  Column a(DataType::kInt32), b(DataType::kInt32);
  a.AppendInt32(1);
  b.AppendInt32(2);
  a.AppendInt32(3);
  b.AppendInt32(4);
  GPL_CHECK_OK(build_side.AddColumn("a", std::move(a)));
  GPL_CHECK_OK(build_side.AddColumn("b", std::move(b)));
  ASSERT_TRUE(MakePartitionedBuildKernel({Col("a"), Col("b")}, state)
                  ->Process(build_side)
                  .ok());

  Table probe_side("p");
  Column pa(DataType::kInt32), pb(DataType::kInt32);
  pa.AppendInt32(3);
  pb.AppendInt32(4);
  pa.AppendInt32(3);
  pb.AppendInt32(5);  // no match
  GPL_CHECK_OK(probe_side.AddColumn("pa", std::move(pa)));
  GPL_CHECK_OK(probe_side.AddColumn("pb", std::move(pb)));
  Result<Table> out = MakePartitionedProbeKernel({Col("pa"), Col("pb")}, state,
                                                 {"b"})
                          ->Process(probe_side);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 1);
  EXPECT_EQ(out->GetColumn("b").Int32At(0), 4);
}

TEST(PartitionedJoinTest, EmptyPartitionsProbeCleanly) {
  // One build key leaves most of the 16 partitions empty; probes that hash
  // into the empty ones must produce zero rows, not crash or mis-join.
  auto state = std::make_shared<PartitionedJoinState>(16);
  ASSERT_TRUE(MakePartitionedBuildKernel({Col("bk")}, state)
                  ->Process(Int32Table("bk", {42}))
                  .ok());
  int empty = 0;
  for (int p = 0; p < 16; ++p) {
    if (state->table(p).num_entries() == 0) ++empty;
  }
  EXPECT_EQ(empty, 15);

  std::vector<int32_t> probes(256);
  for (size_t i = 0; i < probes.size(); ++i) {
    probes[i] = static_cast<int32_t>(i);
  }
  Result<Table> out = MakePartitionedProbeKernel({Col("pk")}, state, {"bk"})
                          ->Process(Int32Table("pk", probes));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 1);
  EXPECT_EQ(out->GetColumn("pk").Int32At(0), 42);
}

TEST(PartitionedJoinTest, EmptyBuildMatchesNothing) {
  auto state = std::make_shared<PartitionedJoinState>(8);
  ASSERT_TRUE(MakePartitionedBuildKernel({Col("bk")}, state)
                  ->Process(Int32Table("bk", {}))
                  .ok());
  Result<Table> out = MakePartitionedProbeKernel({Col("pk")}, state, {"bk"})
                          ->Process(Int32Table("pk", {1, 2, 3}));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 0);
}

TEST(PartitionedJoinTest, SkewedKeysAllLandInOnePartitionAndStillJoin) {
  // Every build row carries the same key: one partition holds the whole
  // table (maximum skew), and a matching probe fans out to every duplicate.
  auto state = std::make_shared<PartitionedJoinState>(8);
  std::vector<int32_t> keys(1000, 7);
  ASSERT_TRUE(MakePartitionedBuildKernel({Col("bk")}, state)
                  ->Process(Int32Table("bk", keys))
                  .ok());
  int populated = 0;
  for (int p = 0; p < 8; ++p) {
    if (state->table(p).num_entries() > 0) ++populated;
  }
  EXPECT_EQ(populated, 1);
  EXPECT_EQ(state->max_partition_bytes(), state->total_table_bytes());

  Result<Table> out = MakePartitionedProbeKernel({Col("pk")}, state, {"bk"})
                          ->Process(Int32Table("pk", {7, 8}));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 1000);  // key 7 matches every duplicate
}

TEST(PartitionedJoinTest, NoMatchesStillProducesSchema) {
  auto state = std::make_shared<PartitionedJoinState>(4);
  ASSERT_TRUE(MakePartitionedBuildKernel({Col("bk")}, state)
                  ->Process(Int32Table("bk", {1}))
                  .ok());
  Result<Table> out = MakePartitionedProbeKernel({Col("pk")}, state, {"bk"})
                          ->Process(Int32Table("pk", {99}));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 0);
  EXPECT_TRUE(out->HasColumn("bk"));
}

TEST(PartitionedJoinTest, ResetClearsState) {
  auto state = std::make_shared<PartitionedJoinState>(4);
  KernelPtr build = MakePartitionedBuildKernel({Col("bk")}, state);
  ASSERT_TRUE(build->Process(Int32Table("bk", {1, 2})).ok());
  EXPECT_GT(state->total_table_bytes(), 0);
  build->Reset();
  EXPECT_EQ(state->total_table_bytes(), 0);
  for (int p = 0; p < 4; ++p) {
    EXPECT_EQ(state->table(p).num_entries(), 0);
  }
}

TEST(PartitionedJoinTest, WorkingSetIsFractionOfTotal) {
  auto state = std::make_shared<PartitionedJoinState>(16);
  std::vector<int32_t> keys(20000);
  for (size_t i = 0; i < keys.size(); ++i) keys[i] = static_cast<int32_t>(i);
  KernelPtr build = MakePartitionedBuildKernel({Col("bk")}, state);
  ASSERT_TRUE(build->Process(Int32Table("bk", keys)).ok());
  EXPECT_LT(state->max_partition_bytes(), state->total_table_bytes() / 8)
      << "partitions must be much smaller than the whole table";
  EXPECT_EQ(build->MaterializedStateBytes(), state->total_table_bytes());
}

// ---- Engine integration ----

TEST(PartitionedJoinEngineTest, PlannerFlagsLargeBuilds) {
  Catalog catalog = Catalog::FromDatabase(SmallDb());
  PlanOptions options;
  options.partition_build_threshold_bytes = 1;  // force everywhere
  Result<PhysicalOpPtr> plan =
      BuildPhysicalPlan(queries::Q9(), catalog, options);
  ASSERT_TRUE(plan.ok());
  int partitioned = 0;
  std::function<void(const PhysicalOp&)> walk = [&](const PhysicalOp& op) {
    if (op.kind == PhysicalOp::Kind::kHashJoin && op.partitioned_join) {
      ++partitioned;
    }
    if (op.child != nullptr) walk(*op.child);
    if (op.build_child != nullptr) walk(*op.build_child);
  };
  walk(**plan);
  EXPECT_GT(partitioned, 0);
}

TEST(PartitionedJoinEngineTest, ResultsIdenticalWithPartitioning) {
  for (auto& [name, query] : queries::EvaluationSuite()) {
    EngineOptions plain_options;
    plain_options.mode = EngineMode::kGpl;
    Engine plain(&SmallDb(), plain_options);
    Result<QueryResult> expected = plain.Execute(query);
    ASSERT_TRUE(expected.ok()) << name;

    EngineOptions part_options;
    part_options.mode = EngineMode::kGpl;
    part_options.partitioned_joins = true;
    // Tiny threshold so partitioning actually engages at test scale.
    part_options.partition_threshold_bytes = 1;
    Engine partitioned(&SmallDb(), part_options);
    Result<QueryResult> got = partitioned.Execute(query);
    ASSERT_TRUE(got.ok()) << name;

    std::string diff;
    EXPECT_TRUE(ref::TablesEqual(got->table, expected->table, &diff))
        << name << ": " << diff;
  }
}

}  // namespace
}  // namespace gpl
