#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "test_util.h"
#include "tpch/date.h"
#include "tpch/dbgen.h"
#include "tpch/text.h"

namespace gpl {
namespace tpch {
namespace {

using testing_util::SmallDb;

TEST(TextTest, RegionAndNationDomains) {
  EXPECT_STREQ(RegionName(2), "ASIA");
  EXPECT_STREQ(NationName(2), "BRAZIL");
  EXPECT_EQ(NationRegion(2), 1);  // BRAZIL -> AMERICA
  EXPECT_STREQ(NationName(6), "FRANCE");
  EXPECT_EQ(NationRegion(6), 3);  // FRANCE -> EUROPE
  EXPECT_STREQ(NationName(7), "GERMANY");
  EXPECT_EQ(NationRegion(7), 3);
}

TEST(TextTest, PartTypeEnumeratesAllCombinations) {
  std::set<std::string> types;
  for (int i = 0; i < kNumPartTypes; ++i) types.insert(PartType(i));
  EXPECT_EQ(types.size(), static_cast<size_t>(kNumPartTypes));
  EXPECT_EQ(PartType(0), "STANDARD ANODIZED TIN");
  EXPECT_TRUE(types.count("ECONOMY ANODIZED STEEL") > 0);
  // PROMO types are exactly 25 of the 150 (one of six first syllables).
  int promo = 0;
  for (const std::string& t : types) {
    if (t.rfind("PROMO", 0) == 0) ++promo;
  }
  EXPECT_EQ(promo, 25);
}

TEST(TextTest, BrandAndMfgrFormat) {
  EXPECT_EQ(PartMfgr(0), "Manufacturer#1");
  EXPECT_EQ(PartBrand(0), "Brand#11");
  EXPECT_EQ(PartBrand(24), "Brand#55");
}

TEST(CardinalitiesTest, ScaleLinearly) {
  const Cardinalities c1 = CardinalitiesFor(1.0);
  EXPECT_EQ(c1.supplier, 10000);
  EXPECT_EQ(c1.part, 200000);
  EXPECT_EQ(c1.partsupp, 800000);
  EXPECT_EQ(c1.customer, 150000);
  EXPECT_EQ(c1.orders, 1500000);

  const Cardinalities c01 = CardinalitiesFor(0.1);
  EXPECT_EQ(c01.orders, 150000);
}

TEST(DbgenTest, RowCountsMatchCardinalities) {
  const Database& db = SmallDb();
  const Cardinalities c = CardinalitiesFor(0.005);
  EXPECT_EQ(db.region.num_rows(), 5);
  EXPECT_EQ(db.nation.num_rows(), 25);
  EXPECT_EQ(db.supplier.num_rows(), c.supplier);
  EXPECT_EQ(db.customer.num_rows(), c.customer);
  EXPECT_EQ(db.part.num_rows(), c.part);
  EXPECT_EQ(db.partsupp.num_rows(), c.partsupp);
  EXPECT_EQ(db.orders.num_rows(), c.orders);
  // 1..7 lineitems per order, expectation 4.
  EXPECT_GE(db.lineitem.num_rows(), c.orders);
  EXPECT_LE(db.lineitem.num_rows(), c.orders * 7);
  EXPECT_NEAR(static_cast<double>(db.lineitem.num_rows()),
              static_cast<double>(c.lineitem_expected),
              0.1 * static_cast<double>(c.lineitem_expected));
}

TEST(DbgenTest, AllTablesValidate) {
  const Database& db = SmallDb();
  for (const char* name : {"region", "nation", "supplier", "customer", "part",
                           "partsupp", "orders", "lineitem"}) {
    const Table* t = db.ByName(name);
    ASSERT_NE(t, nullptr) << name;
    EXPECT_TRUE(t->Validate().ok()) << name;
    EXPECT_GT(t->num_rows(), 0) << name;
  }
  EXPECT_EQ(db.ByName("nonsense"), nullptr);
}

TEST(DbgenTest, DeterministicForSeed) {
  DbgenConfig config;
  config.scale_factor = 0.002;
  const Database a = Generate(config);
  const Database b = Generate(config);
  ASSERT_EQ(a.lineitem.num_rows(), b.lineitem.num_rows());
  const Column& pa = a.lineitem.GetColumn("l_extendedprice");
  const Column& pb = b.lineitem.GetColumn("l_extendedprice");
  for (int64_t i = 0; i < pa.size(); i += 97) {
    EXPECT_DOUBLE_EQ(pa.DoubleAt(i), pb.DoubleAt(i));
  }
}

TEST(DbgenTest, DifferentSeedsProduceDifferentData) {
  DbgenConfig a_config{0.002, 1};
  DbgenConfig b_config{0.002, 2};
  const Database a = Generate(a_config);
  const Database b = Generate(b_config);
  int differing = 0;
  const Column& ca = a.orders.GetColumn("o_orderdate");
  const Column& cb = b.orders.GetColumn("o_orderdate");
  const int64_t n = std::min(ca.size(), cb.size());
  for (int64_t i = 0; i < n; ++i) {
    if (ca.Int32At(i) != cb.Int32At(i)) ++differing;
  }
  EXPECT_GT(differing, n / 2);
}

TEST(DbgenTest, ForeignKeysReferenceExistingRows) {
  const Database& db = SmallDb();
  const int64_t suppliers = db.supplier.num_rows();
  const int64_t parts = db.part.num_rows();
  const int64_t customers = db.customer.num_rows();
  const int64_t orders = db.orders.num_rows();

  const Column& o_cust = db.orders.GetColumn("o_custkey");
  for (int64_t i = 0; i < o_cust.size(); ++i) {
    ASSERT_GE(o_cust.Int32At(i), 1);
    ASSERT_LE(o_cust.Int32At(i), customers);
  }
  const Column& l_order = db.lineitem.GetColumn("l_orderkey");
  const Column& l_part = db.lineitem.GetColumn("l_partkey");
  const Column& l_supp = db.lineitem.GetColumn("l_suppkey");
  for (int64_t i = 0; i < l_order.size(); ++i) {
    ASSERT_GE(l_order.Int32At(i), 1);
    ASSERT_LE(l_order.Int32At(i), orders);
    ASSERT_GE(l_part.Int32At(i), 1);
    ASSERT_LE(l_part.Int32At(i), parts);
    ASSERT_GE(l_supp.Int32At(i), 1);
    ASSERT_LE(l_supp.Int32At(i), suppliers);
  }
}

TEST(DbgenTest, LineitemPartSuppPairsExistInPartsupp) {
  // Required by Q9's composite join.
  const Database& db = SmallDb();
  std::unordered_set<int64_t> pairs;
  const Column& ps_part = db.partsupp.GetColumn("ps_partkey");
  const Column& ps_supp = db.partsupp.GetColumn("ps_suppkey");
  for (int64_t i = 0; i < ps_part.size(); ++i) {
    pairs.insert((static_cast<int64_t>(ps_part.Int32At(i)) << 32) |
                 ps_supp.Int32At(i));
  }
  const Column& l_part = db.lineitem.GetColumn("l_partkey");
  const Column& l_supp = db.lineitem.GetColumn("l_suppkey");
  for (int64_t i = 0; i < l_part.size(); ++i) {
    ASSERT_TRUE(pairs.count((static_cast<int64_t>(l_part.Int32At(i)) << 32) |
                            l_supp.Int32At(i)) > 0)
        << "lineitem row " << i << " references a missing partsupp pair";
  }
}

TEST(DbgenTest, EveryPartHasFourDistinctSuppliers) {
  const Database& db = SmallDb();
  const Column& ps_part = db.partsupp.GetColumn("ps_partkey");
  const Column& ps_supp = db.partsupp.GetColumn("ps_suppkey");
  ASSERT_EQ(ps_part.size() % 4, 0);
  for (int64_t i = 0; i < ps_part.size(); i += 4) {
    std::set<int32_t> supps;
    for (int64_t j = 0; j < 4; ++j) {
      EXPECT_EQ(ps_part.Int32At(i + j), ps_part.Int32At(i));
      supps.insert(ps_supp.Int32At(i + j));
    }
    ASSERT_EQ(supps.size(), 4u) << "part " << ps_part.Int32At(i);
  }
}

TEST(DbgenTest, DateDomains) {
  const Database& db = SmallDb();
  const int32_t min_order = date::FromYMD(1992, 1, 1);
  const int32_t max_order = date::FromYMD(1998, 12, 31) - 151;
  const Column& odate = db.orders.GetColumn("o_orderdate");
  for (int64_t i = 0; i < odate.size(); ++i) {
    ASSERT_GE(odate.Int32At(i), min_order);
    ASSERT_LE(odate.Int32At(i), max_order);
  }
  const Column& ship = db.lineitem.GetColumn("l_shipdate");
  const Column& receipt = db.lineitem.GetColumn("l_receiptdate");
  for (int64_t i = 0; i < ship.size(); ++i) {
    ASSERT_GT(receipt.Int32At(i), ship.Int32At(i));
  }
}

TEST(DbgenTest, ValueDomains) {
  const Database& db = SmallDb();
  const Column& qty = db.lineitem.GetColumn("l_quantity");
  const Column& disc = db.lineitem.GetColumn("l_discount");
  const Column& tax = db.lineitem.GetColumn("l_tax");
  for (int64_t i = 0; i < qty.size(); ++i) {
    ASSERT_GE(qty.DoubleAt(i), 1.0);
    ASSERT_LE(qty.DoubleAt(i), 50.0);
    ASSERT_GE(disc.DoubleAt(i), 0.0);
    ASSERT_LE(disc.DoubleAt(i), 0.10 + 1e-9);
    ASSERT_GE(tax.DoubleAt(i), 0.0);
    ASSERT_LE(tax.DoubleAt(i), 0.08 + 1e-9);
  }
}

TEST(DbgenTest, ExtendedPriceFollowsRetailPrice) {
  const Database& db = SmallDb();
  const Column& qty = db.lineitem.GetColumn("l_quantity");
  const Column& price = db.lineitem.GetColumn("l_extendedprice");
  const Column& part = db.lineitem.GetColumn("l_partkey");
  for (int64_t i = 0; i < qty.size(); i += 53) {
    EXPECT_NEAR(price.DoubleAt(i), qty.DoubleAt(i) * RetailPrice(part.Int32At(i)),
                1e-6);
  }
}

TEST(DbgenTest, RetailPriceFormula) {
  EXPECT_DOUBLE_EQ(RetailPrice(1), (90000.0 + 0.0 + 100.0) / 100.0);
  EXPECT_DOUBLE_EQ(RetailPrice(1000), (90000.0 + 100.0 + 0.0) / 100.0);
}

TEST(DbgenTest, SkippedCustomersHaveNoOrders) {
  const Database& db = SmallDb();
  const Column& cust = db.orders.GetColumn("o_custkey");
  for (int64_t i = 0; i < cust.size(); ++i) {
    ASSERT_NE(cust.Int32At(i) % 3, 0) << "customer divisible by 3 has an order";
  }
}

class DbgenScaleTest : public ::testing::TestWithParam<double> {};

TEST_P(DbgenScaleTest, CardinalitiesTrackScaleFactor) {
  DbgenConfig config;
  config.scale_factor = GetParam();
  const Database db = Generate(config);
  const Cardinalities c = CardinalitiesFor(GetParam());
  EXPECT_EQ(db.orders.num_rows(), c.orders);
  EXPECT_EQ(db.part.num_rows(), c.part);
  EXPECT_EQ(db.nation.num_rows(), 25);
}

INSTANTIATE_TEST_SUITE_P(Scales, DbgenScaleTest,
                         ::testing::Values(0.001, 0.005, 0.02));

}  // namespace
}  // namespace tpch
}  // namespace gpl
