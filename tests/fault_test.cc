// Fault injection and recovery: the injector's determinism contract, fault
// propagation through the simulator and engines, graceful degradation of
// pipelined segments, and the QueryService chaos sweep — under injected
// faults every admitted query still gets exactly one outcome, and whatever
// completes is bit-identical to a fault-free run.
#include "sim/fault.h"

#include <map>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "engine/engine.h"
#include "queries/tpch_queries.h"
#include "service/query_service.h"
#include "sim/engine.h"
#include "test_util.h"

namespace gpl {
namespace {

using testing_util::SmallDb;

// ---- FaultInjector unit tests ----

sim::KernelLaunch MakeLaunch(const std::string& name, int64_t rows) {
  sim::KernelLaunch launch;
  launch.desc.name = name;
  launch.desc.compute_inst_per_row = 8.0;
  launch.desc.mem_inst_per_row = 2.0;
  launch.desc.private_bytes_per_item = 64;
  launch.rows_in = rows;
  launch.bytes_in = rows * 8;
  launch.rows_out = rows;
  launch.bytes_out = rows * 4;
  return launch;
}

sim::PipelineSpec TwoStagePipeline(int64_t rows) {
  sim::PipelineSpec spec;
  sim::KernelLaunch producer = MakeLaunch("producer", rows);
  producer.output = sim::Endpoint::kChannel;
  producer.workgroups_per_tile = 64;
  sim::KernelLaunch consumer = MakeLaunch("consumer", rows);
  consumer.input = sim::Endpoint::kChannel;
  consumer.bytes_in = producer.bytes_out;
  consumer.rows_out = 1;
  consumer.bytes_out = 8;
  consumer.workgroups_per_tile = 64;
  spec.kernels = {producer, consumer};
  spec.channel_configs = {sim::ChannelConfig{}};
  spec.tile_bytes = MiB(1);
  return spec;
}

TEST(FaultInjectorTest, DefaultConfigNeverFires) {
  sim::FaultConfig config;
  EXPECT_FALSE(config.enabled());
  sim::FaultInjector injector(config);
  double penalty = -1.0;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(injector.OnKernelLaunch("k", &penalty).ok());
    EXPECT_EQ(penalty, 0.0);
    EXPECT_TRUE(injector.OnChannelAlloc(sim::ChannelConfig{}).ok());
  }
  EXPECT_EQ(injector.stats().total_faults(), 0);
  EXPECT_EQ(injector.stats().kernel_launches, 1000);
  EXPECT_EQ(injector.stats().channel_reservations, 1000);
}

TEST(FaultInjectorTest, ScheduledKernelAbortFiresAtExactSite) {
  sim::FaultConfig config;
  config.scheduled.push_back(
      {sim::FaultKind::kTransientKernelAbort, /*site_index=*/2});
  ASSERT_TRUE(config.enabled());
  sim::FaultInjector injector(config);
  double penalty = 0.0;
  EXPECT_TRUE(injector.OnKernelLaunch("k0", &penalty).ok());
  EXPECT_TRUE(injector.OnKernelLaunch("k1", &penalty).ok());
  const Status fault = injector.OnKernelLaunch("k2", &penalty);
  ASSERT_FALSE(fault.ok());
  EXPECT_EQ(fault.code(), StatusCode::kTransientDeviceError);
  EXPECT_NE(fault.message().find("k2"), std::string::npos);
  EXPECT_TRUE(injector.OnKernelLaunch("k3", &penalty).ok());
  EXPECT_EQ(injector.stats().kernel_aborts, 1);
}

TEST(FaultInjectorTest, ScheduledChannelFailureFiresAtExactSite) {
  sim::FaultConfig config;
  config.scheduled.push_back(
      {sim::FaultKind::kChannelAllocFailed, /*site_index=*/1});
  sim::FaultInjector injector(config);
  EXPECT_TRUE(injector.OnChannelAlloc(sim::ChannelConfig{}).ok());
  const Status fault = injector.OnChannelAlloc(sim::ChannelConfig{});
  ASSERT_FALSE(fault.ok());
  EXPECT_EQ(fault.code(), StatusCode::kChannelAllocFailed);
  EXPECT_EQ(injector.stats().channel_alloc_failures, 1);
}

TEST(FaultInjectorTest, ThrottleSlowsWithoutFailing) {
  sim::FaultConfig config;
  config.throttle_penalty = 0.75;
  config.scheduled.push_back({sim::FaultKind::kMemoryThrottle, 0});
  sim::FaultInjector injector(config);
  double penalty = 0.0;
  EXPECT_TRUE(injector.OnKernelLaunch("k", &penalty).ok());
  EXPECT_DOUBLE_EQ(penalty, 0.75);
  EXPECT_TRUE(injector.OnKernelLaunch("k", &penalty).ok());
  EXPECT_DOUBLE_EQ(penalty, 0.0);  // only site 0 throttles
  EXPECT_EQ(injector.stats().throttles, 1);
}

TEST(FaultInjectorTest, SameSeedSameDecisions) {
  sim::FaultConfig config;
  config.seed = 123;
  config.kernel_abort_rate = 0.05;
  config.device_reset_rate = 0.01;
  config.throttle_rate = 0.1;
  config.channel_alloc_fail_rate = 0.05;

  sim::FaultInjector a(config);
  sim::FaultInjector b(config);
  double pa = 0.0, pb = 0.0;
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(a.OnKernelLaunch("k", &pa).code(),
              b.OnKernelLaunch("k", &pb).code());
    EXPECT_EQ(pa, pb);
    EXPECT_EQ(a.OnChannelAlloc(sim::ChannelConfig{}).code(),
              b.OnChannelAlloc(sim::ChannelConfig{}).code());
  }
  EXPECT_EQ(a.stats().kernel_aborts, b.stats().kernel_aborts);
  EXPECT_EQ(a.stats().device_resets, b.stats().device_resets);
  EXPECT_EQ(a.stats().throttles, b.stats().throttles);
  EXPECT_EQ(a.stats().channel_alloc_failures,
            b.stats().channel_alloc_failures);
  // At these rates over 2000 sites, something certainly fired.
  EXPECT_GT(a.stats().total_faults(), 0);
}

TEST(FaultInjectorTest, ResetReplaysTheSameStream) {
  sim::FaultConfig config;
  config.kernel_abort_rate = 0.1;
  sim::FaultInjector injector(config);
  std::vector<bool> first;
  double penalty = 0.0;
  for (int i = 0; i < 500; ++i) {
    first.push_back(injector.OnKernelLaunch("k", &penalty).ok());
  }
  injector.Reset();
  EXPECT_EQ(injector.stats().kernel_launches, 0);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(injector.OnKernelLaunch("k", &penalty).ok(), first[i]) << i;
  }
}

TEST(FaultInjectorTest, AttemptSeedSeparatesQueriesAndAttempts) {
  const uint64_t base = 42;
  // Distinct along each axis; equal only for equal inputs.
  EXPECT_EQ(sim::FaultInjector::AttemptSeed(base, 3, 1),
            sim::FaultInjector::AttemptSeed(base, 3, 1));
  EXPECT_NE(sim::FaultInjector::AttemptSeed(base, 3, 1),
            sim::FaultInjector::AttemptSeed(base, 3, 2));
  EXPECT_NE(sim::FaultInjector::AttemptSeed(base, 3, 1),
            sim::FaultInjector::AttemptSeed(base, 4, 1));
  EXPECT_NE(sim::FaultInjector::AttemptSeed(base, 3, 1),
            sim::FaultInjector::AttemptSeed(base + 1, 3, 1));
}

// ---- Simulator-level propagation ----

TEST(SimulatorFaultTest, KernelAbortFailsTheBatch) {
  sim::Simulator sim(sim::DeviceSpec::AmdA10());
  sim::FaultConfig config;
  config.scheduled.push_back({sim::FaultKind::kTransientKernelAbort, 0});
  sim::FaultInjector injector(config);
  Result<sim::SimResult> result =
      sim.RunKernelBatch(MakeLaunch("k", 100000), 0, nullptr, &injector);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTransientDeviceError);
}

TEST(SimulatorFaultTest, ThrottledBatchIsSlowerAndStalls) {
  sim::Simulator sim(sim::DeviceSpec::AmdA10());
  const sim::KernelLaunch launch = MakeLaunch("k", 1000000);
  const sim::SimResult clean = *sim.RunKernelBatch(launch, 0);

  sim::FaultConfig config;
  config.throttle_penalty = 0.5;
  config.scheduled.push_back({sim::FaultKind::kMemoryThrottle, 0});
  sim::FaultInjector injector(config);
  const sim::SimResult throttled =
      *sim.RunKernelBatch(launch, 0, nullptr, &injector);
  EXPECT_GT(throttled.elapsed_cycles(), clean.elapsed_cycles());
  EXPECT_GT(throttled.counters.stall_cycles, clean.counters.stall_cycles);
}

TEST(SimulatorFaultTest, ChannelFailureFailsThePipeline) {
  sim::Simulator sim(sim::DeviceSpec::AmdA10());
  sim::PipelineSpec spec = TwoStagePipeline(500000);
  sim::FaultConfig config;
  config.scheduled.push_back({sim::FaultKind::kChannelAllocFailed, 0});
  sim::FaultInjector injector(config);
  spec.fault = &injector;
  Result<sim::SimResult> result = sim.RunPipeline(spec);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kChannelAllocFailed);

  // The same spec succeeds kernel-at-a-time: sequential tiling reserves no
  // channels, which is exactly why the executor degrades onto it.
  spec.fault = nullptr;
  EXPECT_TRUE(sim.RunSequentialTiles(spec).ok());
}

TEST(SimulatorFaultTest, InertInjectorDoesNotPerturbTiming) {
  sim::Simulator sim(sim::DeviceSpec::AmdA10());
  sim::PipelineSpec spec = TwoStagePipeline(500000);
  const sim::SimResult plain = *sim.RunPipeline(spec);

  // An injector whose faults never fire must be timing-invisible.
  sim::FaultConfig config;
  config.scheduled.push_back(
      {sim::FaultKind::kTransientKernelAbort, /*site_index=*/1 << 20});
  sim::FaultInjector injector(config);
  spec.fault = &injector;
  const sim::SimResult guarded = *sim.RunPipeline(spec);
  EXPECT_EQ(plain.counters.elapsed_cycles, guarded.counters.elapsed_cycles);
  EXPECT_EQ(plain.counters.stall_cycles, guarded.counters.stall_cycles);
  EXPECT_EQ(plain.counters.channel_cycles, guarded.counters.channel_cycles);
  EXPECT_GT(injector.stats().kernel_launches, 0);
}

// ---- Engine-level: degradation and propagation ----

TEST(EngineFaultTest, KbeAbortPropagates) {
  const tpch::Database& db = SmallDb();
  EngineOptions options;
  options.mode = EngineMode::kKbe;
  Engine engine(&db, options);

  sim::FaultConfig config;
  config.scheduled.push_back({sim::FaultKind::kTransientKernelAbort, 0});
  sim::FaultInjector injector(config);
  ExecOptions exec;
  exec.fault = &injector;
  Result<QueryResult> result = engine.Execute(queries::Q6(), exec);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTransientDeviceError);
  EXPECT_EQ(injector.stats().kernel_aborts, 1);
}

TEST(EngineFaultTest, GplAbortPropagates) {
  const tpch::Database& db = SmallDb();
  Engine engine(&db, EngineOptions{});

  sim::FaultConfig config;
  config.scheduled.push_back({sim::FaultKind::kTransientKernelAbort, 0});
  sim::FaultInjector injector(config);
  ExecOptions exec;
  exec.fault = &injector;
  Result<QueryResult> result = engine.Execute(queries::Q14(), exec);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTransientDeviceError);
}

TEST(EngineFaultTest, ChannelFailureDegradesToKernelAtATime) {
  const tpch::Database& db = SmallDb();
  Engine engine(&db, EngineOptions{});
  const LogicalQuery query = queries::Q14();

  Result<QueryResult> baseline = engine.Execute(query);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  ASSERT_EQ(baseline->metrics.degraded_segments, 0);

  // Every channel reservation fails: all pipelined segments re-execute
  // kernel-at-a-time.
  sim::FaultConfig config;
  config.channel_alloc_fail_rate = 1.0;
  sim::FaultInjector injector(config);
  ExecOptions exec;
  exec.fault = &injector;
  Result<QueryResult> degraded = engine.Execute(query, exec);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_GT(degraded->metrics.degraded_segments, 0);

  // The functional result is untouched by degradation; only timing moved.
  ASSERT_EQ(baseline->table.num_rows(), degraded->table.num_rows());
  ASSERT_EQ(baseline->table.num_columns(), degraded->table.num_columns());
  for (int64_t c = 0; c < baseline->table.num_columns(); ++c) {
    const Column& e = baseline->table.ColumnAt(c);
    const Column& a = degraded->table.ColumnAt(c);
    EXPECT_TRUE(e.data32() == a.data32());
    EXPECT_TRUE(e.data64() == a.data64());
    EXPECT_TRUE(e.dataf() == a.dataf());
  }
  EXPECT_NE(baseline->metrics.elapsed_ms, degraded->metrics.elapsed_ms);
}

TEST(EngineFaultTest, DegradationCanBeDisabled) {
  const tpch::Database& db = SmallDb();
  Engine engine(&db, EngineOptions{});

  sim::FaultConfig config;
  config.channel_alloc_fail_rate = 1.0;
  sim::FaultInjector injector(config);
  ExecOptions exec;
  exec.fault = &injector;
  exec.degrade_on_channel_failure = false;
  Result<QueryResult> result = engine.Execute(queries::Q14(), exec);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kChannelAllocFailed);
}

// ---- Service-level chaos sweep ----

struct ChaosOutcome {
  bool ok = false;
  StatusCode code = StatusCode::kOk;
};

struct ChaosRun {
  std::vector<ChaosOutcome> outcomes;  // per submitted query, in order
  service::ServiceStats stats;
  std::vector<Table> tables;  // empty Table for non-completed queries
};

ChaosRun RunChaos(const tpch::Database& db, double fault_rate, uint64_t seed,
                  int max_attempts) {
  service::ServiceOptions options;
  options.num_workers = 3;
  options.queue_capacity = 64;
  options.engine.exec.host_threads = 1;
  options.fault.seed = seed;
  options.fault.kernel_abort_rate = fault_rate;
  options.fault.channel_alloc_fail_rate = fault_rate;
  options.retry.max_attempts = max_attempts;
  options.retry.initial_backoff_ms = 0.01;  // keep the test fast
  options.retry.max_backoff_ms = 0.1;

  service::QueryService service(&db, options);
  std::vector<service::QueryHandle> handles;
  for (int round = 0; round < 2; ++round) {
    for (auto& [name, query] : queries::EvaluationSuite()) {
      Result<service::QueryHandle> submitted =
          service.Submit(name + "#" + std::to_string(round), query);
      EXPECT_TRUE(submitted.ok()) << submitted.status().ToString();
      handles.push_back(submitted.take());
    }
  }

  ChaosRun run;
  for (service::QueryHandle& handle : handles) {
    const Result<QueryResult>& result = handle.Await();
    ChaosOutcome outcome;
    outcome.ok = result.ok();
    outcome.code = result.ok() ? StatusCode::kOk : result.status().code();
    run.outcomes.push_back(outcome);
    run.tables.push_back(result.ok() ? result->table : Table());
  }
  service.Shutdown();
  run.stats = service.Stats();
  return run;
}

TEST(ServiceChaosTest, EveryQueryGetsExactlyOneOutcomeAtAnyFaultRate) {
  const tpch::Database& db = SmallDb();

  // Fault-free ground truth, serial.
  Engine engine(&db, EngineOptions{});
  std::vector<Table> truth;
  std::vector<std::string> names;
  for (int round = 0; round < 2; ++round) {
    for (auto& [name, query] : queries::EvaluationSuite()) {
      Result<QueryResult> result = engine.Execute(query);
      ASSERT_TRUE(result.ok()) << name << ": " << result.status().ToString();
      truth.push_back(result->table);
      names.push_back(name);
    }
  }

  for (double rate : {0.0, 0.01, 0.1}) {
    SCOPED_TRACE("fault_rate=" + std::to_string(rate));
    const ChaosRun run = RunChaos(db, rate, /*seed=*/20160626,
                                  /*max_attempts=*/4);
    ASSERT_EQ(run.outcomes.size(), truth.size());

    // Stats are consistent: every admitted query resolved exactly once.
    EXPECT_EQ(run.stats.admitted, truth.size());
    EXPECT_EQ(run.stats.completed + run.stats.timed_out +
                  run.stats.cancelled + run.stats.failed,
              run.stats.admitted);
    EXPECT_EQ(run.stats.queue_depth, 0u);
    EXPECT_EQ(run.stats.running, 0u);

    uint64_t completed = 0;
    for (size_t i = 0; i < run.outcomes.size(); ++i) {
      SCOPED_TRACE(names[i]);
      if (run.outcomes[i].ok) {
        ++completed;
        // Completed-under-chaos results are bit-identical to fault-free
        // truth: faults abort or degrade executions, never corrupt them.
        const Table& e = truth[i];
        const Table& a = run.tables[i];
        ASSERT_EQ(e.num_rows(), a.num_rows());
        ASSERT_EQ(e.num_columns(), a.num_columns());
        for (int64_t c = 0; c < e.num_columns(); ++c) {
          EXPECT_TRUE(e.ColumnAt(c).data32() == a.ColumnAt(c).data32());
          EXPECT_TRUE(e.ColumnAt(c).data64() == a.ColumnAt(c).data64());
          EXPECT_TRUE(e.ColumnAt(c).dataf() == a.ColumnAt(c).dataf());
        }
      } else {
        // The only error a fully-retried transient fault leaves behind.
        EXPECT_EQ(run.outcomes[i].code, StatusCode::kTransientDeviceError);
      }
    }
    EXPECT_EQ(completed, run.stats.completed);
    if (rate == 0.0) {
      EXPECT_EQ(run.stats.completed, run.stats.admitted);
      EXPECT_EQ(run.stats.retries, 0u);
      EXPECT_EQ(run.stats.gave_up, 0u);
      EXPECT_EQ(run.stats.degraded, 0u);
    } else {
      // At nonzero rates on this workload something fired (each run is
      // hundreds of fault sites; with the fixed seed this is deterministic).
      EXPECT_GT(run.stats.retries + run.stats.degraded + run.stats.gave_up,
                0u);
    }
  }
}

TEST(ServiceChaosTest, SameSeedReproducesOutcomesAcrossRuns) {
  const tpch::Database& db = SmallDb();
  const ChaosRun a = RunChaos(db, 0.1, /*seed=*/7, /*max_attempts=*/3);
  const ChaosRun b = RunChaos(db, 0.1, /*seed=*/7, /*max_attempts=*/3);

  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].ok, b.outcomes[i].ok) << i;
    EXPECT_EQ(a.outcomes[i].code, b.outcomes[i].code) << i;
  }
  EXPECT_EQ(a.stats.completed, b.stats.completed);
  EXPECT_EQ(a.stats.failed, b.stats.failed);
  EXPECT_EQ(a.stats.retries, b.stats.retries);
  EXPECT_EQ(a.stats.degraded, b.stats.degraded);
  EXPECT_EQ(a.stats.gave_up, b.stats.gave_up);
  EXPECT_DOUBLE_EQ(a.stats.total_simulated_ms, b.stats.total_simulated_ms);
}

TEST(ServiceChaosTest, RetriesRecoverMostTransientFaults) {
  const tpch::Database& db = SmallDb();
  const ChaosRun no_retry = RunChaos(db, 0.02, /*seed=*/11, /*max_attempts=*/1);
  const ChaosRun retry = RunChaos(db, 0.02, /*seed=*/11, /*max_attempts=*/5);
  // Retries can only help: with per-attempt independent fault streams, a
  // retried query succeeds unless all 5 attempts fault.
  EXPECT_GE(retry.stats.completed, no_retry.stats.completed);
  EXPECT_EQ(retry.stats.admitted, retry.stats.completed + retry.stats.failed);
}

}  // namespace
}  // namespace gpl
