#include <gtest/gtest.h>

#include "plan/physical_plan.h"
#include "ref/reference_executor.h"
#include "test_util.h"

namespace gpl {
namespace ref {
namespace {

using testing_util::FloatTable;
using testing_util::Int32Table;
using testing_util::SmallDb;

TEST(TablesEqualTest, IdenticalTablesMatch) {
  Table a = Int32Table("x", {1, 2, 3});
  Table b = Int32Table("x", {1, 2, 3});
  std::string why;
  EXPECT_TRUE(TablesEqual(a, b, &why)) << why;
}

TEST(TablesEqualTest, DetectsRowCountMismatch) {
  Table a = Int32Table("x", {1, 2});
  Table b = Int32Table("x", {1, 2, 3});
  std::string why;
  EXPECT_FALSE(TablesEqual(a, b, &why));
  EXPECT_NE(why.find("row count"), std::string::npos);
}

TEST(TablesEqualTest, DetectsColumnNameMismatch) {
  Table a = Int32Table("x", {1});
  Table b = Int32Table("y", {1});
  std::string why;
  EXPECT_FALSE(TablesEqual(a, b, &why));
  EXPECT_NE(why.find("column name"), std::string::npos);
}

TEST(TablesEqualTest, DetectsValueMismatch) {
  Table a = Int32Table("x", {1, 2});
  Table b = Int32Table("x", {1, 5});
  std::string why;
  EXPECT_FALSE(TablesEqual(a, b, &why));
  EXPECT_NE(why.find("row 1"), std::string::npos);
}

TEST(TablesEqualTest, FloatToleranceIsRelative) {
  Table a = FloatTable("v", {1e12});
  Table b = FloatTable("v", {1e12 + 1.0});  // within 1e-6 relative
  EXPECT_TRUE(TablesEqual(a, b));
  Table c = FloatTable("v", {1e12 * 1.001});
  EXPECT_FALSE(TablesEqual(a, c));
}

TEST(TablesEqualTest, StringColumnsComparedByContent) {
  // Different dictionaries, same strings: still equal.
  Column sa(DataType::kString), sb(DataType::kString);
  sb.AppendString("padding");  // shift codes in b's dictionary
  Table a("t"), b("t");
  Column ca(DataType::kString), cb = Column(DataType::kString, sb.dictionary());
  ca.AppendString("ASIA");
  cb.AppendString("ASIA");
  GPL_CHECK_OK(a.AddColumn("s", std::move(ca)));
  GPL_CHECK_OK(b.AddColumn("s", std::move(cb)));
  EXPECT_TRUE(TablesEqual(a, b));
}

TEST(RefExecutorTest, ScanRenamesWithAlias) {
  PhysicalOpPtr scan = MakeScan("nation", {"n_nationkey", "n_name"}, "n1");
  Result<Table> out = ExecutePlan(SmallDb(), scan);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->HasColumn("n1_n_nationkey"));
  EXPECT_TRUE(out->HasColumn("n1_n_name"));
  EXPECT_EQ(out->num_rows(), 25);
}

TEST(RefExecutorTest, UnknownTableFails) {
  PhysicalOpPtr scan = MakeScan("starfleet", {"id"});
  Result<Table> out = ExecutePlan(SmallDb(), scan);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kNotFound);
}

TEST(RefExecutorTest, FilterAndProject) {
  PhysicalOpPtr plan = MakeProject(
      MakeFilter(MakeScan("nation", {"n_nationkey", "n_regionkey"}),
                 Eq(Col("n_regionkey"), LitInt(2))),
      {{"key2", Mul(Col("n_nationkey"), LitInt(2))}});
  Result<Table> out = ExecutePlan(SmallDb(), plan);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 5);  // 5 nations in ASIA
  EXPECT_TRUE(out->HasColumn("key2"));
}

TEST(RefExecutorTest, JoinNationRegion) {
  PhysicalOpPtr plan = MakeHashJoin(
      MakeScan("nation", {"n_nationkey", "n_name", "n_regionkey"}),
      MakeScan("region", {"r_regionkey", "r_name"}), {Col("n_regionkey")},
      {Col("r_regionkey")}, {"r_name"});
  Result<Table> out = ExecutePlan(SmallDb(), plan);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 25);  // every nation matches its region
  EXPECT_TRUE(out->HasColumn("r_name"));
}

TEST(RefExecutorTest, AggregateCountsPerRegion) {
  PhysicalOpPtr plan =
      MakeAggregate(MakeScan("nation", {"n_nationkey", "n_regionkey"}),
                    {{"n_regionkey", Col("n_regionkey")}},
                    {{AggSpec::kCount, nullptr, "nations"}});
  Result<Table> out = ExecutePlan(SmallDb(), plan);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 5);
  int64_t total = 0;
  for (int64_t i = 0; i < 5; ++i) {
    total += out->GetColumn("nations").Int64At(i);
  }
  EXPECT_EQ(total, 25);
}

TEST(RefExecutorTest, SortDescending) {
  PhysicalOpPtr plan = MakeSort(MakeScan("region", {"r_regionkey"}),
                                {{"r_regionkey", true}});
  Result<Table> out = ExecutePlan(SmallDb(), plan);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->GetColumn("r_regionkey").Int32At(0), 4);
  EXPECT_EQ(out->GetColumn("r_regionkey").Int32At(4), 0);
}

}  // namespace
}  // namespace ref
}  // namespace gpl
