#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/math_util.h"
#include "common/random.h"
#include "common/status.h"

namespace gpl {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad tile size");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad tile size");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad tile size");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, TakeMovesValue) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  std::string v = r.take();
  EXPECT_EQ(v, "payload");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  GPL_ASSIGN_OR_RETURN(int half, Half(x));
  GPL_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);

  Result<int> err = Quarter(6);  // 6/2 = 3, odd
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

TEST(RandomTest, DeterministicForSeed) {
  Random a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RandomTest, UniformStaysInRange) {
  Random rng(7);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.Uniform(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(RandomTest, UniformCoversRange) {
  Random rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.Uniform(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RandomTest, BernoulliMatchesProbability) {
  Random rng(13);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RandomTest, SkewedBiasedTowardsLow) {
  Random rng(17);
  double mean = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.Skewed(0, 99, 2.0);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 99);
    mean += static_cast<double>(v);
  }
  mean /= 10000.0;
  EXPECT_LT(mean, 45.0);  // uniform would be ~49.5
}

TEST(MathUtilTest, CeilDiv) {
  EXPECT_EQ(CeilDiv(0, 4), 0);
  EXPECT_EQ(CeilDiv(1, 4), 1);
  EXPECT_EQ(CeilDiv(4, 4), 1);
  EXPECT_EQ(CeilDiv(5, 4), 2);
  EXPECT_EQ(CeilDiv(8, 4), 2);
}

TEST(MathUtilTest, RoundUp) {
  EXPECT_EQ(RoundUp(0, 64), 0);
  EXPECT_EQ(RoundUp(1, 64), 64);
  EXPECT_EQ(RoundUp(64, 64), 64);
  EXPECT_EQ(RoundUp(65, 64), 128);
}

TEST(MathUtilTest, NextPow2) {
  EXPECT_EQ(NextPow2(1), 1u);
  EXPECT_EQ(NextPow2(2), 2u);
  EXPECT_EQ(NextPow2(3), 4u);
  EXPECT_EQ(NextPow2(1000), 1024u);
}

TEST(MathUtilTest, IsPow2) {
  EXPECT_TRUE(IsPow2(1));
  EXPECT_TRUE(IsPow2(64));
  EXPECT_FALSE(IsPow2(0));
  EXPECT_FALSE(IsPow2(65));
}

TEST(MathUtilTest, ByteUnits) {
  EXPECT_EQ(KiB(1), 1024);
  EXPECT_EQ(MiB(1), 1024 * 1024);
  EXPECT_EQ(GiB(2), 2LL * 1024 * 1024 * 1024);
}

TEST(LoggingTest, LevelFilters) {
  const LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  GPL_LOG(Info) << "suppressed message";  // must not crash
  SetLogLevel(saved);
}

TEST(LoggingTest, ParseLogLevelAcceptsAllNames) {
  const struct {
    const char* text;
    LogLevel expected;
  } cases[] = {
      {"debug", LogLevel::kDebug},   {"DEBUG", LogLevel::kDebug},
      {"info", LogLevel::kInfo},     {"warning", LogLevel::kWarning},
      {"Warn", LogLevel::kWarning},  {"error", LogLevel::kError},
      {"FATAL", LogLevel::kFatal},
  };
  for (const auto& c : cases) {
    LogLevel level = LogLevel::kInfo;
    EXPECT_TRUE(ParseLogLevel(c.text, &level)) << c.text;
    EXPECT_EQ(level, c.expected) << c.text;
  }
  LogLevel level = LogLevel::kError;
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
  EXPECT_FALSE(ParseLogLevel("", &level));
  EXPECT_FALSE(ParseLogLevel(nullptr, &level));
  EXPECT_EQ(level, LogLevel::kError);  // failed parses leave the level alone
}

TEST(LoggingTest, EnvVarControlsLogLevel) {
  const LogLevel saved = GetLogLevel();
  ASSERT_EQ(setenv("GPL_LOG_LEVEL", "debug", /*overwrite=*/1), 0);
  InitLogLevelFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);

  ASSERT_EQ(setenv("GPL_LOG_LEVEL", "ERROR", 1), 0);
  InitLogLevelFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);

  // Unrecognized values keep the current level (and warn on stderr).
  ASSERT_EQ(setenv("GPL_LOG_LEVEL", "shout", 1), 0);
  InitLogLevelFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);

  // An unset variable keeps the current level too.
  ASSERT_EQ(unsetenv("GPL_LOG_LEVEL"), 0);
  InitLogLevelFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);

  // An explicit SetLogLevel wins over any later env (re)reads via GetLogLevel.
  SetLogLevel(saved);
  EXPECT_EQ(GetLogLevel(), saved);
}

TEST(LoggingTest, CheckPassesOnTrue) {
  GPL_CHECK(1 + 1 == 2) << "never shown";
  GPL_CHECK_OK(Status::OK());
}

TEST(LoggingDeathTest, CheckAbortsOnFalse) {
  EXPECT_DEATH(GPL_CHECK(false) << "boom", "Check failed");
}

TEST(LoggingDeathTest, CheckOkAbortsOnError) {
  EXPECT_DEATH(GPL_CHECK_OK(Status::Internal("bad")), "Status not OK");
}

// ---- Structured logging (logfmt) ----------------------------------------

/// Captures log lines emitted while in scope, restoring stderr output and
/// the previous threshold on destruction.
class LogCapture {
 public:
  explicit LogCapture(LogLevel threshold = LogLevel::kDebug)
      : previous_level_(GetLogLevel()) {
    SetLogLevel(threshold);
    SetLogSinkForTest(
        [this](LogLevel level, const std::string& line) {
          levels.push_back(level);
          lines.push_back(line);
        });
  }
  ~LogCapture() {
    SetLogSinkForTest(nullptr);
    SetLogLevel(previous_level_);
  }

  std::vector<LogLevel> levels;
  std::vector<std::string> lines;

 private:
  LogLevel previous_level_;
};

TEST(LoggingTest, LogfmtLineHasAllStandardFields) {
  LogCapture capture;
  GPL_SLOG(Info, "service").Field("query", "Q5#3") << "admitted";
  ASSERT_EQ(capture.lines.size(), 1u);
  const std::string& line = capture.lines[0];
  EXPECT_EQ(capture.levels[0], LogLevel::kInfo);
  // ts=<ISO8601>Z first, then level/component, the custom field, msg, src.
  EXPECT_EQ(line.rfind("ts=", 0), 0u) << line;
  EXPECT_NE(line.find("Z level=info component=service "), std::string::npos)
      << line;
  EXPECT_NE(line.find(" query=Q5#3 "), std::string::npos) << line;
  EXPECT_NE(line.find(" msg=admitted "), std::string::npos) << line;
  EXPECT_NE(line.find(" src=common_test.cc:"), std::string::npos) << line;
  EXPECT_EQ(line.find('\n'), std::string::npos) << "must be one line";
}

TEST(LoggingTest, ValuesWithSpacesOrQuotesAreQuotedAndEscaped) {
  LogCapture capture;
  GPL_SLOG(Warning, "sim").Field("label", "segment 0: a -> b")
      << "failed with \"reason\"\nsecond line";
  ASSERT_EQ(capture.lines.size(), 1u);
  const std::string& line = capture.lines[0];
  EXPECT_NE(line.find("label=\"segment 0: a -> b\""), std::string::npos)
      << line;
  // The message is quoted, inner quotes and the newline are escaped, and
  // the rendered line still spans exactly one physical line.
  EXPECT_NE(line.find("msg=\"failed with \\\"reason\\\"\\nsecond line\""),
            std::string::npos)
      << line;
  EXPECT_EQ(line.find('\n'), std::string::npos);
}

TEST(LoggingTest, ThresholdDropsLowerLevels) {
  LogCapture capture(LogLevel::kWarning);
  GPL_LOG(Debug) << "dropped";
  GPL_LOG(Info) << "dropped too";
  GPL_LOG(Warning) << "kept";
  ASSERT_EQ(capture.lines.size(), 1u);
  EXPECT_NE(capture.lines[0].find("msg=kept"), std::string::npos);
}

TEST(LoggingTest, ComponentDefaultsToSourceDirectory) {
  LogCapture capture;
  GPL_LOG(Error) << "oops";
  ASSERT_EQ(capture.lines.size(), 1u);
  // This file lives in tests/, so the derived component is "tests".
  EXPECT_NE(capture.lines[0].find("component=tests "), std::string::npos)
      << capture.lines[0];
}

TEST(LoggingTest, LevelNamesRoundTrip) {
  EXPECT_STREQ(LogLevelName(LogLevel::kDebug), "debug");
  EXPECT_STREQ(LogLevelName(LogLevel::kFatal), "fatal");
  LogLevel level = LogLevel::kInfo;
  EXPECT_TRUE(ParseLogLevel("warning", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_FALSE(ParseLogLevel("loud", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
}

}  // namespace
}  // namespace gpl
