#include <gtest/gtest.h>

#include "common/math_util.h"
#include "core/gpl_executor.h"
#include "core/pipeline.h"
#include "core/tiling.h"
#include "plan/segment.h"
#include "plan/selinger.h"
#include "queries/tpch_queries.h"
#include "ref/reference_executor.h"
#include "test_util.h"

namespace gpl {
namespace {

using testing_util::SmallDb;

TEST(TilingTest, EmptyInputYieldsNoTiles) {
  EXPECT_TRUE(MakeTiles(0, 8, MiB(1)).empty());
}

TEST(TilingTest, SingleTileWhenInputFits) {
  const std::vector<TileRange> tiles = MakeTiles(100, 8, MiB(1));
  ASSERT_EQ(tiles.size(), 1u);
  EXPECT_EQ(tiles[0].begin, 0);
  EXPECT_EQ(tiles[0].rows, 100);
}

TEST(TilingTest, TilesCoverInputExactly) {
  const std::vector<TileRange> tiles = MakeTiles(1000, 16, KiB(4));
  // 4096 / 16 = 256 rows per tile -> 4 tiles: 256+256+256+232.
  ASSERT_EQ(tiles.size(), 4u);
  int64_t covered = 0;
  for (size_t i = 0; i < tiles.size(); ++i) {
    EXPECT_EQ(tiles[i].begin, covered);
    covered += tiles[i].rows;
  }
  EXPECT_EQ(covered, 1000);
  EXPECT_EQ(tiles.back().rows, 1000 - 3 * 256);
}

TEST(TilingTest, AtLeastOneRowPerTile) {
  // Row wider than the tile size: degenerate to one row per tile.
  const std::vector<TileRange> tiles = MakeTiles(5, 1024, 512);
  EXPECT_EQ(tiles.size(), 5u);
  for (const TileRange& t : tiles) EXPECT_EQ(t.rows, 1);
}

class GplFixture : public ::testing::Test {
 protected:
  GplFixture()
      : catalog_(Catalog::FromDatabase(SmallDb())),
        simulator_(sim::DeviceSpec::AmdA10()),
        calibration_(model::CalibrationTable::Run(simulator_)),
        executor_(&SmallDb(), &simulator_, &calibration_) {}

  SegmentedPlan Segments(const LogicalQuery& q) {
    Result<PhysicalOpPtr> plan = BuildPhysicalPlan(q, catalog_);
    GPL_CHECK(plan.ok());
    plan_ = *plan;
    Result<SegmentedPlan> segmented = SegmentPlan(plan_);
    GPL_CHECK(segmented.ok());
    return segmented.take();
  }

  Catalog catalog_;
  sim::Simulator simulator_;
  model::CalibrationTable calibration_;
  GplExecutor executor_;
  PhysicalOpPtr plan_;
};

TEST_F(GplFixture, FunctionalRunObservationsAreConsistent) {
  const SegmentedPlan plan = Segments(queries::ExampleQuery());
  const Segment& seg = plan.segments[0];
  Table input("lineitem");
  for (const std::string& col : seg.input_columns) {
    GPL_CHECK_OK(
        input.AddColumn(col, SmallDb().lineitem.GetColumn(col)));
  }
  Result<FunctionalRun> run = RunSegmentFunctional(seg, input, KiB(256));
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->input_rows, input.num_rows());
  EXPECT_GT(run->num_tiles, 1);
  // Stage 0 consumes exactly the input.
  EXPECT_EQ(run->stages[0].rows_in, input.num_rows());
  // Rows flow: stage i+1 consumes what stage i produced.
  for (size_t s = 0; s + 1 < run->stages.size(); ++s) {
    EXPECT_EQ(run->stages[s + 1].rows_in, run->stages[s].rows_out)
        << "between stages " << s << " and " << s + 1;
  }
  // The example query ends in a single-row sum.
  EXPECT_EQ(run->output.num_rows(), 1);
}

TEST_F(GplFixture, TileSizeDoesNotChangeResults) {
  const SegmentedPlan plan = Segments(queries::Q14());
  GplOptions options;
  options.exec.use_cost_model = false;
  options.exec.overrides.tile_bytes = KiB(256);
  Result<GplRunResult> small = executor_.Run(plan, options);
  ASSERT_TRUE(small.ok());
  options.exec.overrides.tile_bytes = MiB(16);
  Result<GplRunResult> large = executor_.Run(plan, options);
  ASSERT_TRUE(large.ok());
  std::string diff;
  EXPECT_TRUE(ref::TablesEqual(small->output, large->output, &diff)) << diff;
}

TEST_F(GplFixture, MatchesReferenceOnEveryQuery) {
  for (auto& [name, q] : queries::EvaluationSuite()) {
    const SegmentedPlan plan = Segments(q);
    Result<Table> expected = ref::ExecutePlan(SmallDb(), plan_);
    ASSERT_TRUE(expected.ok()) << name;
    Result<GplRunResult> run = executor_.Run(plan, GplOptions{});
    ASSERT_TRUE(run.ok()) << name << ": " << run.status().ToString();
    std::string diff;
    EXPECT_TRUE(ref::TablesEqual(run->output, *expected, &diff))
        << name << ": " << diff;
  }
}

TEST_F(GplFixture, RunningTwiceIsIdempotent) {
  const SegmentedPlan plan = Segments(queries::Q5());
  Result<GplRunResult> first = executor_.Run(plan, GplOptions{});
  Result<GplRunResult> second = executor_.Run(plan, GplOptions{});
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  std::string diff;
  EXPECT_TRUE(ref::TablesEqual(first->output, second->output, &diff)) << diff;
  EXPECT_DOUBLE_EQ(first->total_cycles, second->total_cycles);
}

TEST_F(GplFixture, ReportsOneEntryPerSegment) {
  const SegmentedPlan plan = Segments(queries::Q8());
  Result<GplRunResult> run = executor_.Run(plan, GplOptions{});
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->segments.size(), plan.segments.size());
  for (const SegmentReport& report : run->segments) {
    EXPECT_GT(report.measured_cycles, 0.0);
    EXPECT_GT(report.predicted_cycles, 0.0);
    EXPECT_FALSE(report.description.empty());
  }
}

TEST_F(GplFixture, ConcurrentBeatsSequential) {
  const SegmentedPlan plan = Segments(queries::Q14());
  GplOptions concurrent;
  GplOptions sequential;
  sequential.concurrent = false;
  Result<GplRunResult> with_ce = executor_.Run(plan, concurrent);
  Result<GplRunResult> without_ce = executor_.Run(plan, sequential);
  ASSERT_TRUE(with_ce.ok());
  ASSERT_TRUE(without_ce.ok());
  EXPECT_LT(with_ce->total_cycles, without_ce->total_cycles);
  std::string diff;
  EXPECT_TRUE(ref::TablesEqual(with_ce->output, without_ce->output, &diff))
      << diff;
}

TEST_F(GplFixture, ChannelsCarryMostIntermediates) {
  const SegmentedPlan plan = Segments(queries::Q14());
  Result<GplRunResult> run = executor_.Run(plan, GplOptions{});
  ASSERT_TRUE(run.ok());
  EXPECT_GT(run->counters.bytes_via_channel, 0);
}

TEST_F(GplFixture, TunerChoiceRecorded) {
  const SegmentedPlan plan = Segments(queries::Q14());
  Result<GplRunResult> run = executor_.Run(plan, GplOptions{});
  ASSERT_TRUE(run.ok());
  EXPECT_GT(run->tuner_wall_ms, 0.0);
  for (const SegmentReport& report : run->segments) {
    EXPECT_GT(report.tuning.params.tile_bytes, 0);
    EXPECT_EQ(report.tuning.params.workgroups.size(),
              report.observations.stages.size());
  }
}

}  // namespace
}  // namespace gpl
