#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "ref/reference_executor.h"
#include "test_util.h"
#include "tpch/tbl_io.h"

namespace gpl {
namespace tpch {
namespace {

using testing_util::SmallDb;

class TblIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("gpl_tbl_test_" + std::to_string(::getpid())))
               .string();
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::string dir_;
};

TEST_F(TblIoTest, WriteCreatesAllEightFiles) {
  ASSERT_TRUE(WriteTbl(SmallDb(), dir_).ok());
  for (const char* name : {"region", "nation", "supplier", "customer", "part",
                           "partsupp", "orders", "lineitem"}) {
    EXPECT_TRUE(std::filesystem::exists(dir_ + "/" + std::string(name) + ".tbl"))
        << name;
  }
}

TEST_F(TblIoTest, LinesArePipeTerminated) {
  ASSERT_TRUE(WriteTbl(SmallDb(), dir_).ok());
  std::ifstream in(dir_ + "/region.tbl");
  std::string line;
  int64_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.back(), '|');
  }
  EXPECT_EQ(lines, 5);
}

TEST_F(TblIoTest, RoundTripPreservesAllTables) {
  const Database& original = SmallDb();
  ASSERT_TRUE(WriteTbl(original, dir_).ok());
  Result<Database> loaded = LoadTbl(dir_, original);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  for (const char* name : {"region", "nation", "supplier", "customer", "part",
                           "partsupp", "orders", "lineitem"}) {
    const Table* a = original.ByName(name);
    const Table* b = loaded->ByName(name);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    std::string diff;
    // Floats were rounded to 2 decimals on export; dbgen values are exact
    // hundredths, so the round trip is lossless.
    EXPECT_TRUE(ref::TablesEqual(*a, *b, &diff)) << name << ": " << diff;
  }
}

TEST_F(TblIoTest, LoadedDatabaseAnswersQueriesIdentically) {
  const Database& original = SmallDb();
  ASSERT_TRUE(WriteTbl(original, dir_).ok());
  Result<Database> loaded = LoadTbl(dir_, original);
  ASSERT_TRUE(loaded.ok());

  // Dates must round-trip through their textual form.
  const Column& a = original.lineitem.GetColumn("l_shipdate");
  const Column& b = loaded->lineitem.GetColumn("l_shipdate");
  ASSERT_EQ(a.size(), b.size());
  for (int64_t i = 0; i < a.size(); i += 101) {
    EXPECT_EQ(a.Int32At(i), b.Int32At(i));
  }
}

TEST_F(TblIoTest, LoadMissingFileFails) {
  Result<Table> r =
      LoadTableTbl(dir_ + "/does_not_exist.tbl", SmallDb().region);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(TblIoTest, LoadRejectsShortLines) {
  std::filesystem::create_directories(dir_);
  {
    std::ofstream out(dir_ + "/region.tbl");
    out << "0|AFRICA|\n";
    out << "1|\n";  // missing the name field
  }
  Result<Table> r = LoadTableTbl(dir_ + "/region.tbl", SmallDb().region);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(TblIoTest, SkipsEmptyLines) {
  std::filesystem::create_directories(dir_);
  {
    std::ofstream out(dir_ + "/region.tbl");
    out << "0|AFRICA|\n\n1|AMERICA|\n";
  }
  Result<Table> r = LoadTableTbl(dir_ + "/region.tbl", SmallDb().region);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->num_rows(), 2);
  EXPECT_EQ(r->GetColumn("r_name").StringAt(1), "AMERICA");
}

}  // namespace
}  // namespace tpch
}  // namespace gpl
