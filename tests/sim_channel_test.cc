#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.h"
#include "sim/channel.h"

namespace gpl {
namespace sim {
namespace {

DeviceSpec Amd() { return DeviceSpec::AmdA10(); }

ChannelState MakeChannel(int n, int p) {
  static const DeviceSpec device = Amd();
  ChannelConfig config;
  config.num_channels = n;
  config.packet_bytes = p;
  return ChannelState(config, device);
}

TEST(ChannelTest, CapacityScalesWithChannelCount) {
  const ChannelState one = MakeChannel(1, 16);
  const ChannelState four = MakeChannel(4, 16);
  EXPECT_EQ(four.capacity_bytes(), 4 * one.capacity_bytes());
}

TEST(ChannelTest, EnsureCapacityOnlyGrows) {
  ChannelState ch = MakeChannel(1, 16);
  const int64_t original = ch.capacity_bytes();
  ch.EnsureCapacity(original / 2);
  EXPECT_EQ(ch.capacity_bytes(), original);
  ch.EnsureCapacity(original * 3);
  EXPECT_EQ(ch.capacity_bytes(), original * 3);
}

TEST(ChannelTest, ReserveCommitAcquireAccounting) {
  ChannelState ch = MakeChannel(1, 16);
  const double bytes = 1000.0;
  ASSERT_TRUE(ch.CanReserve(bytes));
  ch.Reserve(bytes);
  EXPECT_DOUBLE_EQ(ch.reserved_bytes(), bytes);
  EXPECT_DOUBLE_EQ(ch.available_bytes(), 0.0);
  EXPECT_FALSE(ch.CanAcquire(bytes));  // reserved, not yet committed

  ch.CommitReserved(bytes);
  EXPECT_DOUBLE_EQ(ch.reserved_bytes(), 0.0);
  EXPECT_DOUBLE_EQ(ch.available_bytes(), bytes);
  ASSERT_TRUE(ch.CanAcquire(bytes));

  ch.Acquire(bytes);
  EXPECT_DOUBLE_EQ(ch.available_bytes(), 0.0);
  EXPECT_DOUBLE_EQ(ch.free_bytes(), static_cast<double>(ch.capacity_bytes()));
}

TEST(ChannelTest, ReservationProvidesBackpressure) {
  ChannelState ch = MakeChannel(1, 16);
  const double cap = static_cast<double>(ch.capacity_bytes());
  ch.Reserve(cap * 0.75);
  EXPECT_FALSE(ch.CanReserve(cap * 0.5));
  EXPECT_TRUE(ch.CanReserve(cap * 0.2));
}

TEST(ChannelTest, InFlightDataCountsAgainstCapacity) {
  ChannelState ch = MakeChannel(1, 16);
  const double cap = static_cast<double>(ch.capacity_bytes());
  ch.Reserve(cap / 2);
  ch.CommitReserved(cap / 2);
  // Available data still occupies space until acquired.
  EXPECT_FALSE(ch.CanReserve(cap * 0.75));
  ch.Acquire(cap / 2);
  EXPECT_TRUE(ch.CanReserve(cap * 0.75));
}

TEST(ChannelCostTest, ZeroPayloadIsFree) {
  const ChannelState ch = MakeChannel(4, 16);
  EXPECT_DOUBLE_EQ(ch.CommitCost(0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(ch.AcquireCost(0.0, 1.0), 0.0);
}

TEST(ChannelCostTest, CostGrowsWithPayload) {
  const ChannelState ch = MakeChannel(4, 16);
  EXPECT_LT(ch.CommitCost(1024, 1.0), ch.CommitCost(4096, 1.0));
  EXPECT_LT(ch.AcquireCost(1024, 1.0), ch.AcquireCost(4096, 1.0));
}

TEST(ChannelCostTest, MoreChannelsAmortizeSyncCost) {
  const double payload = 16 * 1024;
  const double c1 = MakeChannel(1, 16).CommitCost(payload, 1.0);
  const double c4 = MakeChannel(4, 16).CommitCost(payload, 1.0);
  const double c16 = MakeChannel(16, 16).CommitCost(payload, 1.0);
  EXPECT_GT(c1, c4);
  EXPECT_GT(c4, c16);
}

TEST(ChannelCostTest, TooManyChannelsPayManagementPenalty) {
  const double payload = 16 * 1024;
  const double c16 = MakeChannel(16, 16).CommitCost(payload, 1.0);
  const double c32 = MakeChannel(32, 16).CommitCost(payload, 1.0);
  EXPECT_GT(c32, c16);  // beyond the port limit extra channels hurt
}

TEST(ChannelCostTest, ThrashedTrafficIsSlower) {
  const ChannelState ch = MakeChannel(4, 16);
  const double resident = ch.CommitCost(64 * 1024, 1.0);
  const double thrashed = ch.CommitCost(64 * 1024, 0.0);
  EXPECT_GT(thrashed, resident);
}

TEST(ChannelCostTest, TinyPacketsPaySyncOverhead) {
  const double payload = 64 * 1024;
  const double p4 = MakeChannel(4, 4).CommitCost(payload, 1.0);
  const double p256 = MakeChannel(4, 256).CommitCost(payload, 1.0);
  EXPECT_GT(p4, p256);  // 16x the packets, 16x the reservations
}

TEST(ChannelCostTest, OversizedPacketsWasteBandwidthOnPadding) {
  // A 100-byte payload in 4 KB packets transfers a full padded packet.
  const ChannelState big = MakeChannel(4, 4096);
  const ChannelState fit = MakeChannel(4, 128);
  EXPECT_GT(big.CommitCost(100.0, 1.0), fit.CommitCost(100.0, 1.0));
}

TEST(ChannelCostTest, AcquirePaysPaddedTransferSymmetricWithCommit) {
  // The consumer reads back whole packets, so AcquireCost charges the same
  // packet-padded transfer volume as CommitCost — only the per-packet sync
  // share differs (the acquire side pays half). A 100-byte payload in 4 KB
  // packets must therefore cost nearly a full packet's transfer on BOTH
  // sides, not payload/bw on one and padded/bw on the other.
  const ChannelState big = MakeChannel(4, 4096);
  const ChannelState fit = MakeChannel(4, 128);
  EXPECT_GT(big.AcquireCost(100.0, 1.0), fit.AcquireCost(100.0, 1.0));

  // Any payload padding to the same packet count costs the same on both
  // sides: 100 B and 4000 B both occupy one 4 KB packet, so the consumer
  // transfers identical bytes for either.
  const ChannelState ch = MakeChannel(4, 4096);
  EXPECT_DOUBLE_EQ(ch.AcquireCost(100.0, 1.0), ch.AcquireCost(4000.0, 1.0));
  EXPECT_DOUBLE_EQ(ch.CommitCost(100.0, 1.0), ch.CommitCost(4000.0, 1.0));

  // The sync share is the only asymmetry (the acquire side pays half the
  // reservation handshake), so commit - acquire per packet is constant —
  // the transfer terms cancel exactly because both charge padded bytes.
  const double diff_one = ch.CommitCost(100.0, 1.0) - ch.AcquireCost(100.0, 1.0);
  const double diff_two =
      ch.CommitCost(8000.0, 1.0) - ch.AcquireCost(8000.0, 1.0);  // 2 packets
  EXPECT_NEAR(diff_two, 2.0 * diff_one, 1e-9 * diff_two);
}

class ChannelSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ChannelSweepTest, CostsAreFiniteAndPositive) {
  const auto [n, p] = GetParam();
  const ChannelState ch = MakeChannel(n, p);
  for (double payload : {16.0, 1024.0, 65536.0}) {
    for (double residency : {0.0, 0.5, 1.0}) {
      const double commit = ch.CommitCost(payload, residency);
      const double acquire = ch.AcquireCost(payload, residency);
      EXPECT_GT(commit, 0.0);
      EXPECT_GT(acquire, 0.0);
      EXPECT_TRUE(std::isfinite(commit));
      EXPECT_TRUE(std::isfinite(acquire));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ChannelSweepTest,
    ::testing::Combine(::testing::Values(1, 2, 8, 16, 32),
                       ::testing::Values(8, 16, 256, 4096)));

}  // namespace
}  // namespace sim
}  // namespace gpl
