#include <gtest/gtest.h>

#include "common/math_util.h"
#include "engine/engine.h"
#include "engine/explain_analyze.h"
#include "engine/ocelot_engine.h"
#include "trace/json.h"
#include "queries/tpch_queries.h"
#include "ref/reference_executor.h"
#include "test_util.h"

namespace gpl {
namespace {

using testing_util::MediumDb;
using testing_util::SmallDb;

QueryResult MustExecute(const tpch::Database& db, EngineMode mode,
                        const LogicalQuery& query) {
  EngineOptions options;
  options.mode = mode;
  Engine engine(&db, options);
  Result<QueryResult> result = engine.Execute(query);
  GPL_CHECK(result.ok()) << EngineModeName(mode) << " failed: "
                         << result.status().ToString();
  return result.take();
}

TEST(EngineTest, ModeNames) {
  EXPECT_STREQ(EngineModeName(EngineMode::kKbe), "KBE");
  EXPECT_STREQ(EngineModeName(EngineMode::kGpl), "GPL");
  EXPECT_STREQ(EngineModeName(EngineMode::kGplNoCe), "GPL (w/o CE)");
  EXPECT_STREQ(EngineModeName(EngineMode::kOcelot), "Ocelot");
}

class AllModesTest
    : public ::testing::TestWithParam<std::tuple<EngineMode, int>> {};

TEST_P(AllModesTest, ResultsMatchCpuReference) {
  const auto [mode, query_index] = GetParam();
  auto suite = queries::EvaluationSuite();
  const auto& [name, query] = suite[static_cast<size_t>(query_index)];

  Engine planner(&SmallDb(), EngineOptions{});
  Result<PhysicalOpPtr> plan = planner.Plan(query);
  ASSERT_TRUE(plan.ok()) << name;
  Result<Table> expected = ref::ExecutePlan(SmallDb(), *plan);
  ASSERT_TRUE(expected.ok()) << name;

  const QueryResult result = MustExecute(SmallDb(), mode, query);
  std::string diff;
  EXPECT_TRUE(ref::TablesEqual(result.table, *expected, &diff))
      << EngineModeName(mode) << " on " << name << ": " << diff;
  EXPECT_GT(result.metrics.elapsed_ms, 0.0) << name;
}

std::string AllModesTestName(
    const ::testing::TestParamInfo<AllModesTest::ParamType>& info) {
  static const char* const kQueryNames[] = {"Q5", "Q7", "Q8", "Q9", "Q14"};
  std::string mode = EngineModeName(std::get<0>(info.param));
  for (char& c : mode) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return mode + "_" + kQueryNames[std::get<1>(info.param)];
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndQueries, AllModesTest,
    ::testing::Combine(::testing::Values(EngineMode::kKbe, EngineMode::kGplNoCe,
                                         EngineMode::kGpl, EngineMode::kOcelot),
                       ::testing::Values(0, 1, 2, 3, 4)),
    AllModesTestName);

TEST(EngineComparisonTest, GplOutperformsKbeOnEveryQuery) {
  for (auto& [name, query] : queries::EvaluationSuite()) {
    const QueryResult kbe = MustExecute(MediumDb(), EngineMode::kKbe, query);
    const QueryResult gpl = MustExecute(MediumDb(), EngineMode::kGpl, query);
    EXPECT_LT(gpl.metrics.elapsed_ms, kbe.metrics.elapsed_ms)
        << name << ": GPL must beat KBE";
  }
}

TEST(EngineComparisonTest, GplWithoutCeSlowerThanGpl) {
  // Tiling alone (no concurrent execution, no channels) loses the pipeline
  // benefit (Section 5.3.1).
  for (auto& [name, query] : queries::EvaluationSuite()) {
    const QueryResult gpl = MustExecute(MediumDb(), EngineMode::kGpl, query);
    const QueryResult noce =
        MustExecute(MediumDb(), EngineMode::kGplNoCe, query);
    EXPECT_GT(noce.metrics.elapsed_ms, gpl.metrics.elapsed_ms) << name;
  }
}

TEST(EngineComparisonTest, GplMaterializesFractionOfKbe) {
  // Figure 17: 15-33% in the paper; we assert the direction with margin.
  for (auto& [name, query] : queries::EvaluationSuite()) {
    const QueryResult kbe = MustExecute(MediumDb(), EngineMode::kKbe, query);
    const QueryResult gpl = MustExecute(MediumDb(), EngineMode::kGpl, query);
    ASSERT_GT(kbe.metrics.materialized_bytes, 0) << name;
    const double ratio =
        static_cast<double>(gpl.metrics.materialized_bytes) /
        static_cast<double>(kbe.metrics.materialized_bytes);
    EXPECT_LT(ratio, 0.6) << name;
  }
}

TEST(EngineComparisonTest, GplImprovesUtilization) {
  // Figure 19: higher VALU and memory utilization under GPL.
  for (auto& [name, query] : queries::EvaluationSuite()) {
    const QueryResult kbe = MustExecute(MediumDb(), EngineMode::kKbe, query);
    const QueryResult gpl = MustExecute(MediumDb(), EngineMode::kGpl, query);
    EXPECT_GT(gpl.metrics.valu_busy, kbe.metrics.valu_busy) << name;
  }
}

TEST(EngineComparisonTest, GplImprovesCacheHitRatio) {
  // Section 5.3.2: ~27% cache-hit improvement for Q8.
  const QueryResult kbe =
      MustExecute(MediumDb(), EngineMode::kKbe, queries::Q8());
  const QueryResult gpl =
      MustExecute(MediumDb(), EngineMode::kGpl, queries::Q8());
  EXPECT_GT(gpl.metrics.cache_hit_ratio, kbe.metrics.cache_hit_ratio);
}

TEST(EngineComparisonTest, GplCommunicationShareLower) {
  // Figure 20: communication (mem + DC + delay) share of runtime is smaller
  // under GPL than under KBE. Q9 and Q14 show it most clearly at this
  // scale; Q8 (the paper's example) is asserted with a small margin since
  // launch overheads dominate at test-sized inputs.
  for (const LogicalQuery& query : {queries::Q9(), queries::Q14()}) {
    const QueryResult kbe = MustExecute(MediumDb(), EngineMode::kKbe, query);
    const QueryResult gpl = MustExecute(MediumDb(), EngineMode::kGpl, query);
    EXPECT_LT(gpl.metrics.CommunicationFraction(),
              kbe.metrics.CommunicationFraction())
        << query.name;
  }
  const QueryResult kbe8 = MustExecute(MediumDb(), EngineMode::kKbe, queries::Q8());
  const QueryResult gpl8 = MustExecute(MediumDb(), EngineMode::kGpl, queries::Q8());
  EXPECT_LT(gpl8.metrics.CommunicationFraction(),
            kbe8.metrics.CommunicationFraction() + 0.05);
}

TEST(EngineComparisonTest, OcelotBetweenKbeAndGplOnSimpleQueries) {
  const QueryResult kbe =
      MustExecute(MediumDb(), EngineMode::kKbe, queries::Q14());
  const QueryResult ocelot =
      MustExecute(MediumDb(), EngineMode::kOcelot, queries::Q14());
  EXPECT_LT(ocelot.metrics.elapsed_ms, kbe.metrics.elapsed_ms);
}

TEST(EngineComparisonTest, GplBeatsOcelotOnComplexQueries) {
  // Figure 22: GPL significantly outperforms Ocelot on Q8 and Q9.
  for (const LogicalQuery& query : {queries::Q8(), queries::Q9()}) {
    const QueryResult ocelot =
        MustExecute(MediumDb(), EngineMode::kOcelot, query);
    const QueryResult gpl = MustExecute(MediumDb(), EngineMode::kGpl, query);
    EXPECT_LT(gpl.metrics.elapsed_ms, ocelot.metrics.elapsed_ms) << query.name;
  }
}

TEST(EngineMetricsTest, PredictionPopulatedForGplOnly) {
  const QueryResult gpl =
      MustExecute(SmallDb(), EngineMode::kGpl, queries::Q14());
  EXPECT_GT(gpl.metrics.predicted_ms, 0.0);
  const QueryResult kbe =
      MustExecute(SmallDb(), EngineMode::kKbe, queries::Q14());
  EXPECT_DOUBLE_EQ(kbe.metrics.predicted_ms, 0.0);
}

TEST(EngineMetricsTest, ModelErrorIsBounded) {
  // Figure 11: small relative error in the GPL runtime estimate.
  for (auto& [name, query] : queries::EvaluationSuite()) {
    const QueryResult gpl = MustExecute(MediumDb(), EngineMode::kGpl, query);
    EXPECT_LT(gpl.metrics.RelativeError(), 0.35) << name;
  }
}

TEST(EngineMetricsTest, BreakdownSumsToElapsed) {
  const QueryResult gpl =
      MustExecute(SmallDb(), EngineMode::kGpl, queries::Q8());
  const QueryMetrics& m = gpl.metrics;
  EXPECT_NEAR(m.compute_ms + m.mem_ms + m.dc_ms + m.delay_ms + m.other_ms,
              m.elapsed_ms, 1e-6 * m.elapsed_ms);
}

TEST(EngineMetricsTest, OptimizeTimeRecordedAndSmall) {
  const QueryResult gpl =
      MustExecute(SmallDb(), EngineMode::kGpl, queries::Q8());
  EXPECT_GT(gpl.metrics.OptimizeWallMs(), 0.0);
  EXPECT_LT(gpl.metrics.OptimizeWallMs(), 50.0);
}

TEST(EngineTest, DeviceSelectionNvidia) {
  EngineOptions options;
  options.mode = EngineMode::kGpl;
  options.device = sim::DeviceSpec::NvidiaK40();
  Engine engine(&SmallDb(), options);
  Result<QueryResult> result = engine.Execute(queries::Q14());
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->metrics.elapsed_ms, 0.0);
}

TEST(EngineTest, ManualOverridesFlowThrough) {
  EngineOptions options;
  options.mode = EngineMode::kGpl;
  options.exec.use_cost_model = false;
  options.exec.overrides.tile_bytes = MiB(2);
  options.exec.overrides.workgroups_per_kernel = 16;
  Engine engine(&SmallDb(), options);
  Result<GplRunResult> run =
      engine.ExecuteGplDetailed(*engine.Plan(queries::Q14()));
  ASSERT_TRUE(run.ok());
  for (const SegmentReport& report : run->segments) {
    EXPECT_EQ(report.tuning.params.tile_bytes, MiB(2));
    for (int wg : report.tuning.params.workgroups) EXPECT_EQ(wg, 16);
  }
}

TEST(TunerQualityTest, TunedRunCompetitiveWithPinnedSweep) {
  // The point of the cost model (Figures 12/15): its choice should land
  // near the best configuration in the manual sweep, without the sweep.
  const LogicalQuery query = queries::Q8();
  EngineOptions tuned_options;
  tuned_options.mode = EngineMode::kGpl;
  Engine tuned_engine(&MediumDb(), tuned_options);
  Result<QueryResult> tuned = tuned_engine.Execute(query);
  ASSERT_TRUE(tuned.ok());

  double best_pinned = 0.0;
  for (int64_t tile : {KiB(256), KiB(512), MiB(1), MiB(4), MiB(16)}) {
    EngineOptions options;
    options.mode = EngineMode::kGpl;
    options.exec.use_cost_model = false;
    options.exec.overrides.tile_bytes = tile;
    Engine engine(&MediumDb(), options);
    Result<QueryResult> r = engine.Execute(query);
    ASSERT_TRUE(r.ok());
    if (best_pinned == 0.0 || r->metrics.elapsed_ms < best_pinned) {
      best_pinned = r->metrics.elapsed_ms;
    }
  }
  EXPECT_LE(tuned->metrics.elapsed_ms, 1.25 * best_pinned)
      << "tuned run must be within 25% of the best pinned tile size";
}

TEST(TunerQualityTest, TunedBeatsWorstAllocations) {
  // An untuned, badly imbalanced allocation (the S1 setting of Figure 15)
  // must be clearly slower than the tuned run.
  const LogicalQuery query = queries::Q8();
  EngineOptions tuned_options;
  tuned_options.mode = EngineMode::kGpl;
  Engine tuned_engine(&MediumDb(), tuned_options);
  Result<QueryResult> tuned = tuned_engine.Execute(query);
  ASSERT_TRUE(tuned.ok());

  EngineOptions bad_options;
  bad_options.mode = EngineMode::kGpl;
  bad_options.exec.use_cost_model = false;
  bad_options.exec.overrides.workgroups_per_kernel = 2;  // S1
  Engine bad_engine(&MediumDb(), bad_options);
  Result<QueryResult> bad = bad_engine.Execute(query);
  ASSERT_TRUE(bad.ok());
  EXPECT_LT(tuned->metrics.elapsed_ms, bad->metrics.elapsed_ms);
}

TEST(OcelotFlavorTest, FlagsSet) {
  const KbeFlavor flavor = OcelotFlavor();
  EXPECT_TRUE(flavor.bitmap_selection);
  EXPECT_TRUE(flavor.cache_hash_tables);
  EXPECT_GT(flavor.scan_resident_fraction, 0.0);
}

// ---- EXPLAIN ANALYZE -----------------------------------------------------

TEST(ExplainAnalyzeTest, TotalsMatchExecutePlanMetricsExactly) {
  // EXPLAIN ANALYZE and ExecutePlan both go through FinalizeGplMetrics on
  // the same deterministic simulation, so every simulated-time field must be
  // bit-identical, and the per-segment cycles must sum to the total.
  const LogicalQuery query = queries::Q8();
  EngineOptions options;
  options.mode = EngineMode::kGpl;

  Engine engine(&SmallDb(), options);
  Result<ExplainAnalyzeReport> report = ExplainAnalyze(engine, query);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  Engine fresh(&SmallDb(), options);
  Result<QueryResult> executed = fresh.Execute(query);
  ASSERT_TRUE(executed.ok()) << executed.status().ToString();

  const QueryMetrics& a = report->metrics;
  const QueryMetrics& b = executed->metrics;
  EXPECT_EQ(a.counters.elapsed_cycles, b.counters.elapsed_cycles);
  EXPECT_EQ(a.elapsed_ms, b.elapsed_ms);
  EXPECT_EQ(a.predicted_ms, b.predicted_ms);
  EXPECT_EQ(a.channel_bytes, b.channel_bytes);
  EXPECT_EQ(a.materialized_bytes, b.materialized_bytes);
  EXPECT_EQ(a.degraded_segments, b.degraded_segments);
  EXPECT_EQ(report->output_rows, executed->table.num_rows());

  double segment_cycles = 0.0;
  for (const ExplainAnalyzeSegment& seg : report->segments) {
    segment_cycles += seg.actual_cycles;
    EXPECT_FALSE(seg.stages.empty()) << seg.description;
    // The last stage's observed output feeds the next segment or the final
    // table; every stage carries real (not estimated) cardinalities.
    for (const ExplainAnalyzeStage& stage : seg.stages) {
      EXPECT_GE(stage.rows_in, 0);
      EXPECT_GE(stage.bytes_in, 0);
    }
    EXPECT_GT(seg.actual_cycles, 0.0) << seg.description;
    EXPECT_GT(seg.predicted_cycles, 0.0) << seg.description;
    EXPECT_GE(seg.host_wall_ms, 0.0);
  }
  EXPECT_DOUBLE_EQ(segment_cycles, a.counters.elapsed_cycles);
}

TEST(ExplainAnalyzeTest, RendersTreeAndValidJson) {
  Engine engine(&SmallDb(), EngineOptions{});
  Result<ExplainAnalyzeReport> report =
      ExplainAnalyze(engine, queries::Q5());
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  const std::string text = report->ToString();
  EXPECT_NE(text.find("EXPLAIN ANALYZE query=Q5"), std::string::npos);
  EXPECT_NE(text.find("segment 0:"), std::string::npos);
  EXPECT_NE(text.find("cycles: actual="), std::string::npos);
  EXPECT_NE(text.find("totals: segments="), std::string::npos);

  const std::string json = report->ToJson();
  std::string error;
  EXPECT_TRUE(trace::ValidateJson(json, &error)) << error;
  EXPECT_NE(json.find("\"actual_cycles\":"), std::string::npos);
  EXPECT_NE(json.find("\"metrics\":"), std::string::npos);
}

TEST(ExplainAnalyzeTest, RejectsNonGplModes) {
  EngineOptions options;
  options.mode = EngineMode::kKbe;
  Engine engine(&SmallDb(), options);
  Result<ExplainAnalyzeReport> report =
      ExplainAnalyze(engine, queries::Q5());
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kUnimplemented);
}

TEST(ExplainAnalyzeTest, ReportsTuningCacheHitsOnRepeatedSegments) {
  // A second run of the same query through the same engine hits the shared
  // tuning cache for every segment; the report must surface that.
  Engine engine(&SmallDb(), EngineOptions{});
  Result<ExplainAnalyzeReport> first =
      ExplainAnalyze(engine, queries::Q5());
  ASSERT_TRUE(first.ok());
  Result<ExplainAnalyzeReport> second =
      ExplainAnalyze(engine, queries::Q5());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->metrics.tuning_cache_misses, 0);
  for (const ExplainAnalyzeSegment& seg : second->segments) {
    EXPECT_TRUE(seg.tuning_cache_hit) << seg.description;
  }
  // Simulated timing is unaffected by where the tuning choice came from.
  EXPECT_EQ(first->metrics.elapsed_ms, second->metrics.elapsed_ms);
}

}  // namespace
}  // namespace gpl
