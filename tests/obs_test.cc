// Tests for the observability layer (src/obs): histogram quantiles against
// the exact service::Percentile oracle, concurrent registry updates (run
// under TSan by scripts/check.sh), and golden/hostile-name exposition tests
// for the Prometheus and JSON exporters.
#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/export.h"
#include "obs/registry.h"
#include "service/query_service.h"
#include "trace/json.h"

namespace gpl {
namespace obs {
namespace {

// ---- Histogram quantiles vs. the exact oracle ----------------------------

// One bucket spans a factor of 10^(1/20) ~ 1.122, so the interpolated
// quantile can be off by at most ~12.2% relative to the exact value (plus
// nothing: clamping to min/max_seen keeps the tails inside the sample).
constexpr double kBucketRelTol = 0.13;

void ExpectQuantilesMatchOracle(const std::vector<double>& sample,
                                const char* label) {
  Histogram hist{HistogramOptions::LatencyMs()};
  for (const double v : sample) hist.Observe(v);
  ASSERT_EQ(hist.TotalCount(), sample.size());
  for (const double q : {0.50, 0.90, 0.95, 0.99}) {
    const double exact = service::Percentile(sample, q * 100.0);
    const double approx = hist.Quantile(q);
    EXPECT_NEAR(approx, exact, kBucketRelTol * exact)
        << label << " q=" << q;
  }
  // The quantile estimate never leaves the observed range.
  const double lo = *std::min_element(sample.begin(), sample.end());
  const double hi = *std::max_element(sample.begin(), sample.end());
  EXPECT_GE(hist.Quantile(0.0), lo);
  EXPECT_LE(hist.Quantile(1.0), hi);
}

TEST(HistogramQuantile, UniformMatchesExactPercentile) {
  std::mt19937 rng(42);
  std::uniform_real_distribution<double> dist(0.5, 500.0);
  std::vector<double> sample(5000);
  for (double& v : sample) v = dist(rng);
  ExpectQuantilesMatchOracle(sample, "uniform");
}

TEST(HistogramQuantile, ExponentialMatchesExactPercentile) {
  // Heavy right tail, like service latencies under queueing.
  std::mt19937 rng(7);
  std::exponential_distribution<double> dist(1.0 / 20.0);
  std::vector<double> sample(5000);
  for (double& v : sample) v = 0.01 + dist(rng);
  ExpectQuantilesMatchOracle(sample, "exponential");
}

TEST(HistogramQuantile, LognormalMatchesExactPercentile) {
  // Multi-decade spread exercises many buckets.
  std::mt19937 rng(1234);
  std::lognormal_distribution<double> dist(1.0, 1.5);
  std::vector<double> sample(5000);
  for (double& v : sample) v = dist(rng);
  ExpectQuantilesMatchOracle(sample, "lognormal");
}

TEST(HistogramQuantile, BimodalMatchesExactPercentile) {
  // Fast-path vs. slow-path mix (cache hits vs. cold queries).
  std::mt19937 rng(99);
  std::normal_distribution<double> fast(2.0, 0.2);
  std::normal_distribution<double> slow(200.0, 20.0);
  std::vector<double> sample;
  sample.reserve(4000);
  for (int i = 0; i < 3000; ++i) sample.push_back(std::max(0.01, fast(rng)));
  for (int i = 0; i < 1000; ++i) sample.push_back(std::max(0.01, slow(rng)));
  ExpectQuantilesMatchOracle(sample, "bimodal");
}

TEST(HistogramQuantile, ConstantSampleIsExact) {
  Histogram hist{HistogramOptions::LatencyMs()};
  for (int i = 0; i < 100; ++i) hist.Observe(17.5);
  // All mass in one bucket and min == max: clamping makes this exact.
  EXPECT_DOUBLE_EQ(hist.Quantile(0.5), 17.5);
  EXPECT_DOUBLE_EQ(hist.Quantile(0.99), 17.5);
}

TEST(HistogramQuantile, EmptyHistogramReturnsZero) {
  Histogram hist{HistogramOptions::LatencyMs()};
  EXPECT_EQ(hist.TotalCount(), 0u);
  EXPECT_DOUBLE_EQ(hist.Quantile(0.5), 0.0);
}

TEST(Histogram, OutOfRangeValuesLandInEdgeBuckets) {
  HistogramOptions options;
  options.min_value = 1.0;
  options.max_value = 100.0;
  options.buckets_per_decade = 4;
  Histogram hist(options);
  hist.Observe(1e-6);  // below min: underflow bucket, clamped by min_seen
  hist.Observe(1e9);   // above max: overflow bucket, clamped by max_seen
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.counts.front(), 1u);
  EXPECT_EQ(snap.counts.back(), 1u);
  EXPECT_EQ(snap.count, 2u);
  EXPECT_DOUBLE_EQ(snap.min_seen, 1e-6);
  EXPECT_DOUBLE_EQ(snap.max_seen, 1e9);
  EXPECT_LE(hist.Quantile(0.99), 1e9);
}

TEST(Histogram, IgnoresNonFiniteValues) {
  Histogram hist{HistogramOptions::LatencyMs()};
  hist.Observe(std::nan(""));
  hist.Observe(std::numeric_limits<double>::infinity());
  EXPECT_EQ(hist.TotalCount(), 0u);
}

// ---- Registry semantics --------------------------------------------------

TEST(MetricsRegistry, HandlesAreStablePerNameAndLabels) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("requests_total", "help", {{"class", "Q5"}});
  Counter* b = registry.GetCounter("requests_total", "help", {{"class", "Q5"}});
  Counter* c = registry.GetCounter("requests_total", "help", {{"class", "Q8"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  // Label order does not matter: the registry canonicalizes by key.
  Gauge* g1 = registry.GetGauge("depth", "", {{"a", "1"}, {"b", "2"}});
  Gauge* g2 = registry.GetGauge("depth", "", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(g1, g2);
}

TEST(MetricsRegistry, CallbackGaugesCollectAndRemove) {
  MetricsRegistry registry;
  double source = 41.0;
  const uint64_t id = registry.AddCallbackGauge("live_value", "from callback",
                                                {}, [&] { return source; });
  source = 42.0;
  std::vector<FamilySnapshot> families = registry.Collect();
  ASSERT_EQ(families.size(), 1u);
  ASSERT_EQ(families[0].series.size(), 1u);
  EXPECT_DOUBLE_EQ(families[0].series[0].value, 42.0);
  registry.RemoveCallback(id);
  families = registry.Collect();
  ASSERT_EQ(families.size(), 1u);
  EXPECT_TRUE(families[0].series.empty());
}

TEST(MetricsRegistry, NullHelpersAreNoOps) {
  // The disabled-metrics fast path: every helper accepts nullptr.
  Inc(nullptr);
  Inc(nullptr, 5);
  Set(nullptr, 1.0);
  Add(nullptr, 1.0);
  Observe(nullptr, 1.0);
}

TEST(MetricsRegistry, ConcurrentUpdatesAreExact) {
  // Exercised under ThreadSanitizer by scripts/check.sh: handle acquisition
  // races registration, and all three metric kinds race their updates.
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIters = 4000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      Counter* shared = registry.GetCounter("shared_total", "");
      Counter* mine = registry.GetCounter(
          "per_thread_total", "", {{"thread", std::to_string(t)}});
      Gauge* gauge = registry.GetGauge("accumulated", "");
      Histogram* hist = registry.GetHistogram(
          "latency", "", HistogramOptions::LatencyMs());
      for (int i = 0; i < kIters; ++i) {
        shared->Increment();
        mine->Increment();
        gauge->Add(1.0);
        hist->Observe(1.0 + (i % 100));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(registry.GetCounter("shared_total", "")->Value(),
            static_cast<uint64_t>(kThreads) * kIters);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(registry
                  .GetCounter("per_thread_total", "",
                              {{"thread", std::to_string(t)}})
                  ->Value(),
              static_cast<uint64_t>(kIters));
  }
  EXPECT_DOUBLE_EQ(registry.GetGauge("accumulated", "")->Value(),
                   static_cast<double>(kThreads) * kIters);
  Histogram* hist =
      registry.GetHistogram("latency", "", HistogramOptions::LatencyMs());
  EXPECT_EQ(hist->TotalCount(), static_cast<uint64_t>(kThreads) * kIters);
}

TEST(MetricsRegistry, CollectWhileWriting) {
  // Snapshots taken mid-update must be internally consistent (count >=
  // sum-of-buckets reconciliation) and must never tear.
  MetricsRegistry registry;
  Histogram* hist =
      registry.GetHistogram("latency", "", HistogramOptions::LatencyMs());
  Counter* counter = registry.GetCounter("events_total", "");
  std::thread writer([&] {
    for (int i = 0; i < 20000; ++i) {
      hist->Observe(0.5 + (i % 7));
      counter->Increment();
    }
  });
  for (int i = 0; i < 50; ++i) {
    for (const FamilySnapshot& family : registry.Collect()) {
      for (const SeriesSnapshot& series : family.series) {
        if (!series.histogram.has_value()) continue;
        uint64_t bucket_total = 0;
        for (const uint64_t c : series.histogram->counts) bucket_total += c;
        EXPECT_GE(series.histogram->count, bucket_total);
      }
    }
  }
  writer.join();
}

// ---- Exporters -----------------------------------------------------------

TEST(PrometheusExport, GoldenCounterAndGauge) {
  MetricsRegistry registry;
  registry.GetCounter("gpl_requests_total", "Requests by class",
                      {{"class", "Q5"}})
      ->Increment(3);
  registry.GetCounter("gpl_requests_total", "Requests by class",
                      {{"class", "Q8"}})
      ->Increment(7);
  registry.GetGauge("gpl_queue_depth", "Waiting queries")->Set(2.5);
  const std::string expected =
      "# HELP gpl_queue_depth Waiting queries\n"
      "# TYPE gpl_queue_depth gauge\n"
      "gpl_queue_depth 2.5\n"
      "# HELP gpl_requests_total Requests by class\n"
      "# TYPE gpl_requests_total counter\n"
      "gpl_requests_total{class=\"Q5\"} 3\n"
      "gpl_requests_total{class=\"Q8\"} 7\n";
  EXPECT_EQ(PrometheusText(registry), expected);
}

TEST(PrometheusExport, HistogramBucketsAreCumulativeWithInf) {
  MetricsRegistry registry;
  HistogramOptions options;
  options.min_value = 1.0;
  options.max_value = 100.0;
  options.buckets_per_decade = 1;  // bounds: 1, 10, 100
  Histogram* hist = registry.GetHistogram("lat_ms", "Latency", options);
  hist->Observe(0.5);
  hist->Observe(5.0);
  hist->Observe(50.0);
  hist->Observe(5000.0);  // overflow
  const std::string expected =
      "# HELP lat_ms Latency\n"
      "# TYPE lat_ms histogram\n"
      "lat_ms_bucket{le=\"1\"} 1\n"
      "lat_ms_bucket{le=\"10\"} 2\n"
      "lat_ms_bucket{le=\"100\"} 3\n"
      "lat_ms_bucket{le=\"+Inf\"} 4\n"
      "lat_ms_sum 5055.5\n"
      "lat_ms_count 4\n";
  EXPECT_EQ(PrometheusText(registry), expected);
}

TEST(PrometheusExport, HostileNamesAreSanitizedAndEscaped) {
  MetricsRegistry registry;
  registry
      .GetCounter("2nd metric#with bad chars!", "help with \\ and \nnewline",
                  {{"bad label!", "value with \"quotes\", \\ and \nnewline"}})
      ->Increment();
  const std::string text = PrometheusText(registry);
  EXPECT_EQ(text,
            "# HELP _2nd_metric_with_bad_chars_ help with \\\\ and "
            "\\nnewline\n"
            "# TYPE _2nd_metric_with_bad_chars_ counter\n"
            "_2nd_metric_with_bad_chars_{bad_label_=\"value with \\\"quotes"
            "\\\", \\\\ and \\nnewline\"} 1\n");
}

TEST(PrometheusExport, ColonAllowedInMetricNameNotLabelName) {
  EXPECT_EQ(SanitizeMetricName("ns:sub:name"), "ns:sub:name");
  EXPECT_EQ(SanitizeLabelName("ns:sub"), "ns_sub");
  EXPECT_EQ(SanitizeMetricName(""), "_");
}

TEST(JsonExport, SnapshotIsValidJsonWithQuantiles) {
  MetricsRegistry registry;
  registry.GetCounter("events_total", "Events")->Increment(12);
  registry.GetGauge("depth", "Queue depth")->Set(3.0);
  Histogram* hist = registry.GetHistogram("lat_ms", "Latency",
                                          HistogramOptions::LatencyMs());
  for (int i = 1; i <= 100; ++i) hist->Observe(static_cast<double>(i));
  const std::string json = JsonSnapshot(registry);
  std::string error;
  ASSERT_TRUE(trace::ValidateJson(json, &error)) << error;
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p95\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
  EXPECT_NE(json.find("\"value\":12"), std::string::npos);
}

TEST(JsonExport, HostileNamesStayValidJson) {
  MetricsRegistry registry;
  registry
      .GetCounter("name with \"quotes\" and \\backslash\\",
                  "help\nwith\tcontrol chars",
                  {{"läbel", "va\"lue\n"}})
      ->Increment();
  const std::string json = JsonSnapshot(registry);
  std::string error;
  EXPECT_TRUE(trace::ValidateJson(json, &error)) << error << "\n" << json;
}

TEST(JsonExport, GoldenSmallRegistry) {
  MetricsRegistry registry;
  registry.GetCounter("a_total", "A", {{"k", "v"}})->Increment(5);
  registry.GetGauge("b", "B")->Set(1.5);
  EXPECT_EQ(JsonSnapshot(registry),
            "{\"metrics\":["
            "{\"name\":\"a_total\",\"type\":\"counter\",\"help\":\"A\","
            "\"series\":[{\"labels\":{\"k\":\"v\"},\"value\":5}]},"
            "{\"name\":\"b\",\"type\":\"gauge\",\"help\":\"B\","
            "\"series\":[{\"labels\":{},\"value\":1.5}]}"
            "]}");
}

TEST(EncodeLabelsTest, SortsByKey) {
  EXPECT_EQ(EncodeLabels({{"b", "2"}, {"a", "1"}}),
            EncodeLabels({{"a", "1"}, {"b", "2"}}));
  EXPECT_NE(EncodeLabels({{"a", "1"}}), EncodeLabels({{"a", "2"}}));
}

}  // namespace
}  // namespace obs
}  // namespace gpl
