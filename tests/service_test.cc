#include "service/query_service.h"

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "queries/tpch_queries.h"
#include "test_util.h"

namespace gpl {
namespace {

using service::QueryHandle;
using service::QueryService;
using service::ServiceOptions;
using service::ServiceStats;
using testing_util::SmallDb;

/// Bit-level table equality: raw physical buffers, not a tolerance compare.
/// Execution is simulated, so concurrency must not change a single bit.
void ExpectTablesBitIdentical(const Table& expected, const Table& actual) {
  ASSERT_EQ(expected.num_columns(), actual.num_columns());
  ASSERT_EQ(expected.num_rows(), actual.num_rows());
  for (int64_t i = 0; i < expected.num_columns(); ++i) {
    SCOPED_TRACE("column " + expected.ColumnNameAt(i));
    EXPECT_EQ(expected.ColumnNameAt(i), actual.ColumnNameAt(i));
    const Column& e = expected.ColumnAt(i);
    const Column& a = actual.ColumnAt(i);
    ASSERT_EQ(e.type(), a.type());
    EXPECT_TRUE(e.data32() == a.data32());
    EXPECT_TRUE(e.data64() == a.data64());
    EXPECT_TRUE(e.dataf() == a.dataf());
  }
}

/// Exact equality of every simulated hardware counter (all deterministic).
void ExpectCountersBitIdentical(const sim::HwCounters& expected,
                                const sim::HwCounters& actual) {
  EXPECT_EQ(expected.elapsed_cycles, actual.elapsed_cycles);
  EXPECT_EQ(expected.compute_cycles, actual.compute_cycles);
  EXPECT_EQ(expected.mem_cycles, actual.mem_cycles);
  EXPECT_EQ(expected.channel_cycles, actual.channel_cycles);
  EXPECT_EQ(expected.stall_cycles, actual.stall_cycles);
  EXPECT_EQ(expected.launch_cycles, actual.launch_cycles);
  EXPECT_EQ(expected.cache_hits, actual.cache_hits);
  EXPECT_EQ(expected.cache_accesses, actual.cache_accesses);
  EXPECT_EQ(expected.resident_wg_time, actual.resident_wg_time);
  EXPECT_EQ(expected.bytes_materialized, actual.bytes_materialized);
  EXPECT_EQ(expected.bytes_via_channel, actual.bytes_via_channel);
}

/// The core service guarantee: N queries through a concurrent QueryService
/// produce results bit-identical to a serial Engine — same tables, same
/// HwCounters, same simulated times. Only host wall-clock may differ.
TEST(QueryServiceTest, ConcurrentResultsMatchSerialBitIdentical) {
  const tpch::Database& db = SmallDb();

  // Workload: the evaluation suite, twice over (queries interleave and
  // repeat across workers).
  std::vector<std::pair<std::string, LogicalQuery>> workload;
  for (int round = 0; round < 2; ++round) {
    for (auto& [name, query] : queries::EvaluationSuite()) {
      workload.emplace_back(name + "#" + std::to_string(round), query);
    }
  }

  // Serial baseline.
  Engine engine(&db, EngineOptions{});
  std::vector<QueryResult> serial;
  serial.reserve(workload.size());
  for (auto& [name, query] : workload) {
    Result<QueryResult> result = engine.Execute(query);
    ASSERT_TRUE(result.ok()) << name << ": " << result.status().ToString();
    serial.push_back(result.take());
  }

  // Concurrent run: all queries in flight at once on 4 workers.
  ServiceOptions options;
  options.num_workers = 4;
  options.queue_capacity = workload.size();
  QueryService service(&db, options);
  std::vector<QueryHandle> handles;
  for (auto& [name, query] : workload) {
    Result<QueryHandle> submitted = service.Submit(name, query);
    ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
    handles.push_back(submitted.take());
  }

  for (size_t i = 0; i < handles.size(); ++i) {
    SCOPED_TRACE(workload[i].first);
    const Result<QueryResult>& result = handles[i].Await();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectTablesBitIdentical(serial[i].table, result->table);
    ExpectCountersBitIdentical(serial[i].metrics.counters,
                               result->metrics.counters);
    EXPECT_EQ(serial[i].metrics.elapsed_ms, result->metrics.elapsed_ms);
    EXPECT_EQ(serial[i].metrics.predicted_ms, result->metrics.predicted_ms);
  }

  service.Shutdown();
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.admitted, workload.size());
  EXPECT_EQ(stats.completed, workload.size());
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.timed_out, 0u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_GT(stats.p95_latency_ms, 0.0);
  EXPECT_GE(stats.p95_latency_ms, stats.p50_latency_ms);
  EXPECT_GE(stats.p99_latency_ms, stats.p95_latency_ms);
}

TEST(QueryServiceTest, RejectsWhenAdmissionQueueFull) {
  const tpch::Database& db = SmallDb();
  ServiceOptions options;
  options.num_workers = 1;
  options.queue_capacity = 2;
  QueryService service(&db, options);
  // Paused workers never pop, so the queue fills deterministically.
  service.Pause();

  const LogicalQuery q6 = queries::Q6();
  std::vector<QueryHandle> handles;
  for (int i = 0; i < 2; ++i) {
    Result<QueryHandle> submitted =
        service.Submit("q6#" + std::to_string(i), q6);
    ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
    handles.push_back(submitted.take());
  }
  Result<QueryHandle> rejected = service.Submit("q6#overflow", q6);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);

  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.queue_depth, 2u);

  service.Resume();
  for (QueryHandle& handle : handles) {
    EXPECT_TRUE(handle.Await().ok());
  }
  stats = service.Stats();
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.max_queue_depth, 2u);
}

TEST(QueryServiceTest, ExpiredDeadlineReportsDeadlineExceeded) {
  const tpch::Database& db = SmallDb();
  ServiceOptions options;
  options.num_workers = 1;
  QueryService service(&db, options);
  service.Pause();

  // An (effectively) already-expired deadline: the first cancellation check
  // fires before any segment executes, so the outcome is deterministic.
  Result<QueryHandle> submitted =
      service.Submit("q6-deadline", queries::Q6(), /*timeout_ms=*/1e-6);
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  service.Resume();

  QueryHandle handle = submitted.take();
  const Result<QueryResult>& result = handle.Await();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);

  service.Shutdown();
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.timed_out, 1u);
  EXPECT_EQ(stats.completed, 0u);
}

TEST(QueryServiceTest, CancelledQueryReportsCancelled) {
  const tpch::Database& db = SmallDb();
  ServiceOptions options;
  options.num_workers = 1;
  QueryService service(&db, options);
  service.Pause();

  Result<QueryHandle> submitted = service.Submit("q6-cancel", queries::Q6());
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  QueryHandle handle = submitted.take();
  handle.Cancel();  // still queued — unwinds before the first segment
  service.Resume();

  const Result<QueryResult>& result = handle.Await();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);

  service.Shutdown();
  EXPECT_EQ(service.Stats().cancelled, 1u);
}

// Percentile (declared in query_service.h) interpolates linearly between the
// two closest order statistics — these values pin that contract so reporting
// code and dashboards can rely on it.
TEST(PercentileTest, InterpolatesBetweenClosestRanks) {
  EXPECT_DOUBLE_EQ(service::Percentile({}, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(service::Percentile({7.0}, 50.0), 7.0);
  EXPECT_DOUBLE_EQ(service::Percentile({7.0}, 95.0), 7.0);
  // p50 of two samples is their midpoint, not either sample (nearest-rank
  // would return 2.0 here).
  EXPECT_DOUBLE_EQ(service::Percentile({1.0, 2.0}, 50.0), 1.5);
  // 1..100: rank = 0.95 * 99 = 94.05 -> 95 + 0.05 * (96 - 95).
  std::vector<double> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<size_t>(i)] = i + 1.0;
  EXPECT_DOUBLE_EQ(service::Percentile(v, 50.0), 50.5);
  EXPECT_DOUBLE_EQ(service::Percentile(v, 95.0), 95.05);
  EXPECT_DOUBLE_EQ(service::Percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(service::Percentile(v, 100.0), 100.0);
  // Input order is irrelevant (the sample is sorted internally).
  EXPECT_DOUBLE_EQ(service::Percentile({2.0, 1.0}, 50.0), 1.5);
}

TEST(QueryHandleTest, AwaitOnInvalidHandleReturnsFailedPrecondition) {
  QueryHandle invalid;
  EXPECT_FALSE(invalid.valid());
  EXPECT_FALSE(invalid.Done());
  const Result<QueryResult>& result = invalid.Await();  // must not block
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  invalid.Cancel();  // no-op, must not crash
}

TEST(QueryHandleTest, MovedFromHandleAwaitsSafely) {
  const tpch::Database& db = SmallDb();
  ServiceOptions options;
  options.num_workers = 1;
  QueryService service(&db, options);

  Result<QueryHandle> submitted = service.Submit("q6", queries::Q6());
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  QueryHandle handle = submitted.take();
  QueryHandle stolen = std::move(handle);
  // The moved-from handle is invalid but safe; the new one still works.
  EXPECT_FALSE(handle.valid());
  EXPECT_EQ(handle.Await().status().code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(stolen.Await().ok());
  service.Shutdown();
}

/// Queries whose deadline expires while still queued short-circuit to
/// kDeadlineExceeded without ever reaching an engine — a saturated queue
/// must not burn worker time executing queries nobody is waiting for.
TEST(QueryServiceTest, QueuedDeadlineShortCircuitsBeforeExecution) {
  const tpch::Database& db = SmallDb();
  ServiceOptions options;
  options.num_workers = 1;
  options.queue_capacity = 8;
  QueryService service(&db, options);
  service.Pause();  // saturate: nothing dispatches until Resume

  std::vector<QueryHandle> handles;
  for (int i = 0; i < 4; ++i) {
    Result<QueryHandle> submitted = service.Submit(
        "q5#" + std::to_string(i), queries::Q5(), /*timeout_ms=*/1e-6);
    ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
    handles.push_back(submitted.take());
  }
  service.Resume();

  for (QueryHandle& handle : handles) {
    const Result<QueryResult>& result = handle.Await();
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  }
  service.Shutdown();
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.timed_out, handles.size());
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_EQ(stats.retries, 0u);
}

TEST(QueryServiceTest, SubmitAfterShutdownIsUnavailable) {
  const tpch::Database& db = SmallDb();
  ServiceOptions options;
  options.num_workers = 1;
  QueryService service(&db, options);
  service.Shutdown();

  Result<QueryHandle> submitted = service.Submit("late", queries::Q6());
  ASSERT_FALSE(submitted.ok());
  EXPECT_EQ(submitted.status().code(), StatusCode::kUnavailable);
}

/// Concurrent workers with morsel-parallel kernels (host_threads=2) on top:
/// two layers of host parallelism, still bit-identical to a serial Engine.
TEST(QueryServiceTest, HostParallelWorkersBitIdenticalToSerial) {
  const tpch::Database& db = SmallDb();

  EngineOptions serial_options;
  serial_options.exec.host_threads = 1;
  Engine engine(&db, serial_options);
  std::vector<std::pair<std::string, QueryResult>> serial;
  for (auto& [name, query] : queries::EvaluationSuite()) {
    Result<QueryResult> result = engine.Execute(query);
    ASSERT_TRUE(result.ok()) << name << ": " << result.status().ToString();
    serial.emplace_back(name, result.take());
  }

  ServiceOptions options;
  options.num_workers = 2;
  options.queue_capacity = serial.size();
  options.engine.exec.host_threads = 2;
  QueryService service(&db, options);
  std::vector<QueryHandle> handles;
  for (auto& [name, query] : queries::EvaluationSuite()) {
    Result<QueryHandle> submitted = service.Submit(name, query);
    ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
    handles.push_back(submitted.take());
  }
  for (size_t i = 0; i < handles.size(); ++i) {
    SCOPED_TRACE(serial[i].first);
    const Result<QueryResult>& result = handles[i].Await();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectTablesBitIdentical(serial[i].second.table, result->table);
    ExpectCountersBitIdentical(serial[i].second.metrics.counters,
                               result->metrics.counters);
    EXPECT_EQ(serial[i].second.metrics.elapsed_ms,
              result->metrics.elapsed_ms);
  }
  service.Shutdown();
}

/// The shared tuning cache across workers: repeated submissions of the same
/// queries hit at steady state. Concurrent first-misses on one signature may
/// each run the search (benign, first insert wins), so misses are bounded by
/// unique-signatures * num_workers rather than exactly unique-signatures.
TEST(QueryServiceTest, SharedTuningCacheHitsAcrossWorkers) {
  const tpch::Database& db = SmallDb();
  ServiceOptions options;
  options.num_workers = 2;
  options.queue_capacity = 64;
  QueryService service(&db, options);

  constexpr int kRounds = 20;
  std::vector<QueryHandle> handles;
  for (int round = 0; round < kRounds; ++round) {
    for (const char* name : {"Q5", "Q14"}) {
      for (auto& [n, query] : queries::EvaluationSuite()) {
        if (n != name) continue;
        Result<QueryHandle> submitted =
            service.Submit(std::string(name) + "#" + std::to_string(round),
                           query);
        ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
        handles.push_back(submitted.take());
      }
    }
  }
  for (QueryHandle& handle : handles) {
    ASSERT_TRUE(handle.Await().ok());
  }
  service.Shutdown();

  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.completed, handles.size());
  const uint64_t total = stats.tuning_cache_hits + stats.tuning_cache_misses;
  ASSERT_GT(total, 0u);
  // Unique signatures = the distinct segments of Q5 + Q14; every one may be
  // double-missed once per worker, everything else must hit.
  const uint64_t unique = service.tuning_cache().size();
  EXPECT_LE(stats.tuning_cache_misses,
            unique * static_cast<uint64_t>(options.num_workers));
  const double hit_rate =
      static_cast<double>(stats.tuning_cache_hits) /
      static_cast<double>(total);
  EXPECT_GE(hit_rate, 0.9) << stats.ToString();
  // The stats string surfaces the counters for CLIs/benches.
  EXPECT_NE(stats.ToString().find("tuning_cache_hits="), std::string::npos);
}

TEST(QueryServiceTest, ShutdownDrainsQueuedQueries) {
  const tpch::Database& db = SmallDb();
  ServiceOptions options;
  options.num_workers = 2;
  options.queue_capacity = 8;
  QueryService service(&db, options);
  service.Pause();

  std::vector<QueryHandle> handles;
  for (int i = 0; i < 6; ++i) {
    Result<QueryHandle> submitted =
        service.Submit("q14#" + std::to_string(i), queries::Q14());
    ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
    handles.push_back(submitted.take());
  }
  // Shutdown() drains: admitted queries still owe their submitters results.
  service.Shutdown();
  for (QueryHandle& handle : handles) {
    EXPECT_TRUE(handle.Done());
    EXPECT_TRUE(handle.Await().ok());
  }
  EXPECT_EQ(service.Stats().completed, 6u);
}

TEST(QueryServiceTest, MetricsRegistryTracksOutcomesAndLatency) {
  const tpch::Database& db = SmallDb();
  obs::MetricsRegistry registry;
  ServiceOptions options;
  options.num_workers = 2;
  options.metrics = &registry;
  QueryService service(&db, options);

  std::vector<QueryHandle> handles;
  for (int i = 0; i < 6; ++i) {
    Result<QueryHandle> h =
        service.Submit("Q5#" + std::to_string(i), queries::Q5());
    ASSERT_TRUE(h.ok());
    handles.push_back(h.take());
  }
  for (QueryHandle& h : handles) ASSERT_TRUE(h.Await().ok());
  service.Shutdown();

  EXPECT_EQ(registry
                .GetCounter("gpl_service_admission_total", "",
                            {{"result", "admitted"}})
                ->Value(),
            6u);
  EXPECT_EQ(registry
                .GetCounter("gpl_service_queries_total", "",
                            {{"outcome", "completed"}})
                ->Value(),
            6u);
  obs::Histogram* latency = registry.GetHistogram(
      "gpl_service_latency_ms", "", obs::HistogramOptions::LatencyMs());
  EXPECT_EQ(latency->TotalCount(), 6u);
  // Per-class fan-out: all six were Q5 submissions.
  obs::Histogram* by_class = registry.GetHistogram(
      "gpl_service_class_latency_ms", "", obs::HistogramOptions::LatencyMs(),
      {{"class", "Q5"}});
  EXPECT_EQ(by_class->TotalCount(), 6u);
  // The bounded histogram agrees with the exact ServiceStats percentiles:
  // both are computed from the same observations.
  const ServiceStats stats = service.Stats();
  EXPECT_NEAR(latency->Quantile(0.5), stats.p50_latency_ms,
              1e-9 + 0.13 * stats.p50_latency_ms);
  // The simulator's per-device counters registered through the propagated
  // engine options and saw every kernel launch.
  EXPECT_GT(registry
                .GetCounter("gpl_sim_kernel_launches_total", "",
                            {{"device", options.engine.device.name}})
                ->Value(),
            0u);
}

}  // namespace
}  // namespace gpl
