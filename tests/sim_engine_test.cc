#include <gtest/gtest.h>

#include "common/math_util.h"
#include "sim/engine.h"

namespace gpl {
namespace sim {
namespace {

KernelLaunch MakeLaunch(const std::string& name, int64_t rows, int64_t bytes_in,
                        int64_t bytes_out, double c_inst = 8.0,
                        double m_inst = 2.0) {
  KernelLaunch launch;
  launch.desc.name = name;
  launch.desc.compute_inst_per_row = c_inst;
  launch.desc.mem_inst_per_row = m_inst;
  launch.desc.private_bytes_per_item = 64;
  launch.rows_in = rows;
  launch.bytes_in = bytes_in;
  launch.rows_out = rows;
  launch.bytes_out = bytes_out;
  return launch;
}

PipelineSpec TwoStagePipeline(int64_t rows, double lambda = 1.0) {
  PipelineSpec spec;
  KernelLaunch producer = MakeLaunch("producer", rows, rows * 8, 0);
  producer.output = Endpoint::kChannel;
  producer.workgroups_per_tile = 64;
  producer.rows_out = static_cast<int64_t>(rows * lambda);
  producer.bytes_out = producer.rows_out * 8;
  KernelLaunch consumer =
      MakeLaunch("consumer", producer.rows_out, producer.bytes_out, 8);
  consumer.input = Endpoint::kChannel;
  consumer.workgroups_per_tile = 64;
  spec.kernels = {producer, consumer};
  spec.channel_configs = {ChannelConfig{}};
  spec.tile_bytes = MiB(1);
  return spec;
}

class SimEngineTest : public ::testing::Test {
 protected:
  Simulator sim_{DeviceSpec::AmdA10()};
};

TEST_F(SimEngineTest, KernelBatchElapsedPositive) {
  const SimResult r = *sim_.RunKernelBatch(MakeLaunch("k", 100000, 800000, 0), 0);
  EXPECT_GT(r.elapsed_cycles(), 0.0);
  EXPECT_GT(r.counters.compute_cycles, 0.0);
  EXPECT_GT(r.counters.mem_cycles, 0.0);
}

TEST_F(SimEngineTest, KernelBatchScalesWithRows) {
  const double small =
      sim_.RunKernelBatch(MakeLaunch("k", 100000, 800000, 0), 0)->elapsed_cycles();
  const double big =
      sim_.RunKernelBatch(MakeLaunch("k", 400000, 3200000, 0), 0)->elapsed_cycles();
  EXPECT_GT(big, small * 2.0);  // ~4x work minus fixed launch overhead
  EXPECT_LT(big, small * 6.0);
}

TEST_F(SimEngineTest, KernelBatchIncludesLaunchOverhead) {
  const SimResult r = *sim_.RunKernelBatch(MakeLaunch("k", 64, 512, 0), 0);
  EXPECT_GE(r.elapsed_cycles(),
            static_cast<double>(sim_.device().kernel_launch_cycles));
}

TEST_F(SimEngineTest, ComputeHeavyKernelHasHighValuShare) {
  const SimResult compute_heavy = *sim_.RunKernelBatch(
      MakeLaunch("c", 1000000, 8000000, 0, /*c_inst=*/64.0, /*m_inst=*/0.5), 0);
  const SimResult memory_heavy = *sim_.RunKernelBatch(
      MakeLaunch("m", 1000000, 8000000, 0, /*c_inst=*/2.0, /*m_inst=*/8.0), 0);
  EXPECT_GT(compute_heavy.counters.ValuBusy(sim_.device()),
            memory_heavy.counters.ValuBusy(sim_.device()));
  EXPECT_GT(memory_heavy.counters.MemUnitBusy(sim_.device()),
            compute_heavy.counters.MemUnitBusy(sim_.device()));
}

TEST_F(SimEngineTest, MaterializedOutputCounted) {
  KernelLaunch launch = MakeLaunch("k", 100000, 800000, 400000);
  const SimResult r = *sim_.RunKernelBatch(launch, 0);
  EXPECT_EQ(r.counters.bytes_materialized, 400000);
}

TEST_F(SimEngineTest, ResidentStructuresReduceHitRatio) {
  KernelLaunch launch = MakeLaunch("probe", 500000, 4000000, 0);
  launch.desc.random_access_fraction = 0.5;
  launch.desc.random_working_set_bytes = MiB(8);  // larger than cache
  const SimResult hot = *sim_.RunKernelBatch(launch, 0);
  const SimResult cold = *sim_.RunKernelBatch(launch, MiB(16));
  EXPECT_GE(hot.counters.CacheHitRatio(), cold.counters.CacheHitRatio());
  EXPECT_GE(cold.elapsed_cycles(), hot.elapsed_cycles());
}

TEST_F(SimEngineTest, PipelineDrainsAndAccountsChannelBytes) {
  const PipelineSpec spec = TwoStagePipeline(500000);
  const SimResult r = *sim_.RunPipeline(spec);
  EXPECT_GT(r.elapsed_cycles(), 0.0);
  EXPECT_GT(r.counters.channel_cycles, 0.0);
  EXPECT_EQ(r.counters.bytes_via_channel, spec.kernels[0].bytes_out);
  EXPECT_EQ(r.counters.bytes_materialized, spec.kernels[1].bytes_out);
  ASSERT_EQ(r.kernels.size(), 2u);
}

TEST_F(SimEngineTest, PipelineFasterThanSequentialTiles) {
  const PipelineSpec spec = TwoStagePipeline(2000000);
  const double piped = sim_.RunPipeline(spec)->elapsed_cycles();
  const double sequential = sim_.RunSequentialTiles(spec)->elapsed_cycles();
  EXPECT_LT(piped, sequential);
}

TEST_F(SimEngineTest, SequentialTilesPaysPerTileLaunches) {
  PipelineSpec spec = TwoStagePipeline(2000000);
  spec.tile_bytes = KiB(256);
  const double small_tiles = sim_.RunSequentialTiles(spec)->counters.launch_cycles;
  spec.tile_bytes = MiB(8);
  const double big_tiles = sim_.RunSequentialTiles(spec)->counters.launch_cycles;
  EXPECT_GT(small_tiles, big_tiles);
}

TEST_F(SimEngineTest, ImbalancedWorkgroupsCauseDelay) {
  PipelineSpec balanced = TwoStagePipeline(2000000);
  balanced.kernels[0].workgroups_per_tile = 64;
  balanced.kernels[1].workgroups_per_tile = 64;
  PipelineSpec starved = balanced;
  starved.kernels[0].workgroups_per_tile = 2;   // slow producer
  starved.kernels[1].workgroups_per_tile = 64;  // eager consumer
  const SimResult b = *sim_.RunPipeline(balanced);
  const SimResult s = *sim_.RunPipeline(starved);
  // Starving the producer slows the whole pipeline: the consumer idles and
  // the segment takes far longer than the balanced allocation.
  EXPECT_GT(s.elapsed_cycles(), 1.2 * b.elapsed_cycles());
}

TEST_F(SimEngineTest, HugeTilesThrashTheCache) {
  PipelineSpec small = TwoStagePipeline(8000000);
  small.tile_bytes = MiB(2);
  PipelineSpec huge = small;
  huge.tile_bytes = MiB(64);  // way past the 4 MB cache
  const SimResult r_small = *sim_.RunPipeline(small);
  const SimResult r_huge = *sim_.RunPipeline(huge);
  EXPECT_GT(r_huge.counters.channel_cycles, r_small.counters.channel_cycles);
  EXPECT_LT(r_huge.counters.CacheHitRatio(), r_small.counters.CacheHitRatio());
}

TEST_F(SimEngineTest, CountersStayWithinBounds) {
  for (int64_t rows : {10000, 300000, 1000000}) {
    const SimResult r = *sim_.RunPipeline(TwoStagePipeline(rows));
    EXPECT_GE(r.counters.ValuBusy(sim_.device()), 0.0);
    EXPECT_LE(r.counters.ValuBusy(sim_.device()), 1.0);
    EXPECT_GE(r.counters.MemUnitBusy(sim_.device()), 0.0);
    EXPECT_LE(r.counters.MemUnitBusy(sim_.device()), 1.0);
    EXPECT_GE(r.counters.Occupancy(sim_.device()), 0.0);
    EXPECT_LE(r.counters.Occupancy(sim_.device()), 1.0);
    EXPECT_GE(r.counters.CacheHitRatio(), 0.0);
    EXPECT_LE(r.counters.CacheHitRatio(), 1.0);
  }
}

TEST_F(SimEngineTest, ThreeStagePipelineDrains) {
  PipelineSpec spec;
  KernelLaunch k0 = MakeLaunch("map1", 1000000, 8000000, 4000000);
  k0.output = Endpoint::kChannel;
  KernelLaunch k1 = MakeLaunch("map2", 1000000, 4000000, 2000000);
  k1.input = Endpoint::kChannel;
  k1.output = Endpoint::kChannel;
  KernelLaunch k2 = MakeLaunch("build", 500000, 2000000, 2000000);
  k2.input = Endpoint::kChannel;
  spec.kernels = {k0, k1, k2};
  spec.channel_configs = {ChannelConfig{}, ChannelConfig{}};
  spec.tile_bytes = MiB(2);
  const SimResult r = *sim_.RunPipeline(spec);
  EXPECT_GT(r.elapsed_cycles(), 0.0);
  ASSERT_EQ(r.kernels.size(), 3u);
  for (const KernelStats& k : r.kernels) {
    EXPECT_GT(k.busy_cycles, 0.0);
    EXPECT_LE(k.finish_cycles, r.elapsed_cycles());
  }
}

TEST_F(SimEngineTest, ZeroRowPipelineStillTerminates) {
  PipelineSpec spec = TwoStagePipeline(1);
  spec.kernels[0].rows_in = 0;
  spec.kernels[0].bytes_in = 0;
  spec.kernels[0].rows_out = 0;
  spec.kernels[0].bytes_out = 0;
  spec.kernels[1].rows_in = 0;
  spec.kernels[1].bytes_in = 0;
  const SimResult r = *sim_.RunPipeline(spec);
  EXPECT_GE(r.elapsed_cycles(), 0.0);
}

TEST_F(SimEngineTest, NvidiaHigherConcurrencyHelpsDeepPipelines) {
  // Four concurrent kernels: AMD (C=2) serializes more than NVIDIA (C=16).
  auto make_spec = [] {
    PipelineSpec spec;
    int64_t rows = 2000000;
    for (int i = 0; i < 4; ++i) {
      KernelLaunch k = MakeLaunch("k" + std::to_string(i), rows, rows * 8,
                                  rows * 8, 16.0, 2.0);
      if (i > 0) k.input = Endpoint::kChannel;
      if (i < 3) k.output = Endpoint::kChannel;
      spec.kernels.push_back(k);
    }
    spec.channel_configs.assign(3, ChannelConfig{});
    spec.tile_bytes = MiB(2);
    return spec;
  };
  Simulator amd(DeviceSpec::AmdA10());
  Simulator nvidia(DeviceSpec::NvidiaK40());
  const double amd_cycles = amd.RunPipeline(make_spec())->elapsed_cycles();
  const double nv_cycles = nvidia.RunPipeline(make_spec())->elapsed_cycles();
  // Not directly comparable in absolute terms (different clocks/BW), but
  // both must drain, and the K40 (more CUs, more bandwidth, C=16) is faster.
  EXPECT_GT(amd_cycles, 0.0);
  EXPECT_GT(nv_cycles, 0.0);
  EXPECT_LT(nv_cycles, amd_cycles);
}

}  // namespace
}  // namespace sim
}  // namespace gpl
