// Property tests: the simulator is a pure function of its inputs — repeated
// runs agree exactly, and costs respond monotonically to the obvious knobs.
#include <gtest/gtest.h>

#include "common/math_util.h"
#include "model/calibration.h"
#include "sim/engine.h"

namespace gpl {
namespace sim {
namespace {

PipelineSpec MakeSpec(int64_t rows, int wg, int64_t tile) {
  PipelineSpec spec;
  KernelLaunch producer;
  producer.desc.name = "p";
  producer.desc.compute_inst_per_row = 8.0;
  producer.desc.mem_inst_per_row = 2.0;
  producer.desc.private_bytes_per_item = 64;
  producer.rows_in = rows;
  producer.bytes_in = rows * 8;
  producer.rows_out = rows;
  producer.bytes_out = rows * 4;
  producer.output = Endpoint::kChannel;
  producer.workgroups_per_tile = wg;
  KernelLaunch consumer = producer;
  consumer.desc.name = "c";
  consumer.input = Endpoint::kChannel;
  consumer.output = Endpoint::kGlobal;
  consumer.bytes_in = producer.bytes_out;
  consumer.bytes_out = 8;
  consumer.rows_out = 1;
  spec.kernels = {producer, consumer};
  spec.channel_configs = {ChannelConfig{}};
  spec.tile_bytes = tile;
  return spec;
}

class DeterminismTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(DeterminismTest, RepeatedPipelineRunsAgreeExactly) {
  Simulator sim(DeviceSpec::AmdA10());
  const PipelineSpec spec = MakeSpec(GetParam(), 32, MiB(1));
  const SimResult a = *sim.RunPipeline(spec);
  const SimResult b = *sim.RunPipeline(spec);
  EXPECT_DOUBLE_EQ(a.elapsed_cycles(), b.elapsed_cycles());
  EXPECT_DOUBLE_EQ(a.counters.compute_cycles, b.counters.compute_cycles);
  EXPECT_DOUBLE_EQ(a.counters.mem_cycles, b.counters.mem_cycles);
  EXPECT_DOUBLE_EQ(a.counters.channel_cycles, b.counters.channel_cycles);
  EXPECT_DOUBLE_EQ(a.counters.stall_cycles, b.counters.stall_cycles);
}

TEST_P(DeterminismTest, SequentialAndBatchAgreeAcrossRuns) {
  Simulator sim(DeviceSpec::AmdA10());
  const PipelineSpec spec = MakeSpec(GetParam(), 32, MiB(1));
  EXPECT_DOUBLE_EQ(sim.RunSequentialTiles(spec)->elapsed_cycles(),
                   sim.RunSequentialTiles(spec)->elapsed_cycles());
  KernelLaunch launch = spec.kernels[0];
  launch.output = Endpoint::kGlobal;
  EXPECT_DOUBLE_EQ(sim.RunKernelBatch(launch, 0)->elapsed_cycles(),
                   sim.RunKernelBatch(launch, 0)->elapsed_cycles());
}

INSTANTIATE_TEST_SUITE_P(Sizes, DeterminismTest,
                         ::testing::Values(1000, 100000, 2000000));

TEST(SimMonotonicityTest, MoreComputeInstructionsNeverFaster) {
  Simulator sim(DeviceSpec::AmdA10());
  double prev = 0.0;
  for (double c_inst : {2.0, 8.0, 32.0, 128.0}) {
    PipelineSpec spec = MakeSpec(1000000, 32, MiB(1));
    spec.kernels[0].desc.compute_inst_per_row = c_inst;
    const double elapsed = sim.RunPipeline(spec)->elapsed_cycles();
    EXPECT_GE(elapsed, prev);
    prev = elapsed;
  }
}

TEST(SimMonotonicityTest, HigherLatencyNeverFaster) {
  double prev = 0.0;
  for (int latency : {100, 300, 600, 1200}) {
    DeviceSpec device = DeviceSpec::AmdA10();
    device.global_mem_latency = latency;
    Simulator sim(device);
    PipelineSpec spec = MakeSpec(1000000, 32, MiB(1));
    spec.kernels[0].desc.random_access_fraction = 0.8;
    spec.kernels[0].desc.random_working_set_bytes = MiB(32);
    const double elapsed = sim.RunPipeline(spec)->elapsed_cycles();
    EXPECT_GE(elapsed, prev);
    prev = elapsed;
  }
}

TEST(SimMonotonicityTest, MoreBandwidthNeverSlowerForScans) {
  double prev = 1e18;
  for (double bw : {10.0, 35.0, 100.0, 330.0}) {
    DeviceSpec device = DeviceSpec::AmdA10();
    device.global_bw_bytes_per_cycle = bw;
    Simulator sim(device);
    KernelLaunch launch;
    launch.desc.name = "scan";
    launch.desc.compute_inst_per_row = 2.0;
    launch.desc.mem_inst_per_row = 4.0;
    launch.rows_in = 4000000;
    launch.bytes_in = 64000000;
    launch.bytes_out = 0;
    const double elapsed = sim.RunKernelBatch(launch, 0)->elapsed_cycles();
    EXPECT_LE(elapsed, prev);
    prev = elapsed;
  }
}

TEST(SimMonotonicityTest, CalibrationIsDeterministic) {
  Simulator sim(DeviceSpec::AmdA10());
  const model::CalibrationTable a = model::CalibrationTable::Run(sim);
  const model::CalibrationTable b = model::CalibrationTable::Run(sim);
  ASSERT_EQ(a.points().size(), b.points().size());
  for (size_t i = 0; i < a.points().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.points()[i].throughput_bytes_per_cycle,
                     b.points()[i].throughput_bytes_per_cycle);
  }
}

}  // namespace
}  // namespace sim
}  // namespace gpl
