/// End-to-end guarantees of the shared-work subplan cache: a hit must leave
/// every observable of the simulated execution — result tables, hardware
/// counters, simulated elapsed time — bit-identical to isolated, cache-less
/// execution, at every capacity (including 0) and under eviction churn.
#include "pool/subplan_cache.h"

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "engine/explain_analyze.h"
#include "model/tuning_cache.h"
#include "queries/tpch_queries.h"
#include "service/query_service.h"
#include "test_util.h"

namespace gpl {
namespace {

using pool::SubplanCache;
using pool::SubplanCacheOptions;
using service::QueryHandle;
using service::QueryService;
using service::ServiceOptions;
using service::ServiceStats;
using testing_util::SmallDb;

void ExpectTablesBitIdentical(const Table& expected, const Table& actual) {
  ASSERT_EQ(expected.num_columns(), actual.num_columns());
  ASSERT_EQ(expected.num_rows(), actual.num_rows());
  for (int64_t i = 0; i < expected.num_columns(); ++i) {
    SCOPED_TRACE("column " + expected.ColumnNameAt(i));
    const Column& e = expected.ColumnAt(i);
    const Column& a = actual.ColumnAt(i);
    ASSERT_EQ(e.type(), a.type());
    EXPECT_TRUE(e.data32() == a.data32());
    EXPECT_TRUE(e.data64() == a.data64());
    EXPECT_TRUE(e.dataf() == a.dataf());
  }
}

void ExpectResultsBitIdentical(const QueryResult& expected,
                               const QueryResult& actual) {
  ExpectTablesBitIdentical(expected.table, actual.table);
  // Simulated timing must be exactly the cache-less value — a hit replays
  // the simulation, it does not skip it.
  EXPECT_EQ(expected.metrics.elapsed_ms, actual.metrics.elapsed_ms);
  EXPECT_EQ(expected.metrics.predicted_ms, actual.metrics.predicted_ms);
  EXPECT_EQ(expected.metrics.counters.elapsed_cycles,
            actual.metrics.counters.elapsed_cycles);
  EXPECT_EQ(expected.metrics.counters.compute_cycles,
            actual.metrics.counters.compute_cycles);
  EXPECT_EQ(expected.metrics.counters.mem_cycles,
            actual.metrics.counters.mem_cycles);
  EXPECT_EQ(expected.metrics.counters.cache_hits,
            actual.metrics.counters.cache_hits);
  EXPECT_EQ(expected.metrics.channel_bytes, actual.metrics.channel_bytes);
  EXPECT_EQ(expected.metrics.fused_segments, actual.metrics.fused_segments);
  EXPECT_EQ(expected.metrics.fused_launches_saved,
            actual.metrics.fused_launches_saved);
}

/// Isolated truth: a fresh cache-less engine per call.
QueryResult IsolatedTruth(const tpch::Database& db, const LogicalQuery& query,
                          EngineOptions options = EngineOptions{}) {
  options.subplan_cache = nullptr;
  Engine engine(&db, options);
  Result<QueryResult> result = engine.Execute(query);
  GPL_CHECK_OK(result.status());
  return result.take();
}

TEST(SubplanCacheEngineTest, WarmHitsAreBitIdenticalToColdAndIsolated) {
  const tpch::Database& db = SmallDb();

  for (auto& [name, query] : queries::EvaluationSuite()) {
    SCOPED_TRACE(name);
    // Fresh cache per query so the cold run is genuinely cold (suite queries
    // share scans and build sides, which would otherwise pre-warm it).
    SubplanCache cache(SubplanCacheOptions{});
    EngineOptions options;
    options.subplan_cache = &cache;
    Engine engine(&db, options);
    const QueryResult truth = IsolatedTruth(db, query);

    Result<QueryResult> cold = engine.Execute(query);
    ASSERT_TRUE(cold.ok()) << cold.status().ToString();
    EXPECT_EQ(cold->metrics.subplan_cache_hits, 0);
    EXPECT_GT(cold->metrics.subplan_cache_misses, 0);
    ExpectResultsBitIdentical(truth, *cold);

    Result<QueryResult> warm = engine.Execute(query);
    ASSERT_TRUE(warm.ok()) << warm.status().ToString();
    // Every cacheable segment hits on the repeat run.
    EXPECT_GT(warm->metrics.subplan_cache_hits, 0);
    EXPECT_EQ(warm->metrics.subplan_cache_misses, 0);
    ExpectResultsBitIdentical(truth, *warm);
    EXPECT_GT(cache.stats().hits, 0u);
  }
}

TEST(SubplanCacheEngineTest, CapacityZeroMatchesIsolatedTruth) {
  const tpch::Database& db = SmallDb();
  SubplanCacheOptions cache_options;
  cache_options.capacity_bytes = 0;  // retention fully disabled
  SubplanCache cache(cache_options);
  EngineOptions options;
  options.subplan_cache = &cache;
  Engine engine(&db, options);

  for (int round = 0; round < 2; ++round) {
    for (auto& [name, query] : queries::EvaluationSuite()) {
      SCOPED_TRACE(name + "#" + std::to_string(round));
      Result<QueryResult> result = engine.Execute(query);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_EQ(result->metrics.subplan_cache_hits, 0);
      ExpectResultsBitIdentical(IsolatedTruth(db, query), *result);
    }
  }
  EXPECT_EQ(cache.stats().entries, 0);
  EXPECT_GT(cache.stats().rejected, 0u);
}

/// A cache far too small for the working set churns through evictions; the
/// mix of hits, misses and re-misses must never change a result bit.
TEST(SubplanCacheEngineTest, EvictionHeavyScheduleMatchesIsolatedTruth) {
  const tpch::Database& db = SmallDb();
  SubplanCacheOptions cache_options;
  cache_options.capacity_bytes = 64 * 1024;  // a handful of pages
  cache_options.page_bytes = 4 * 1024;
  SubplanCache cache(cache_options);
  EngineOptions options;
  options.subplan_cache = &cache;
  Engine engine(&db, options);

  for (int round = 0; round < 3; ++round) {
    for (auto& [name, query] : queries::EvaluationSuite()) {
      SCOPED_TRACE(name + "#" + std::to_string(round));
      Result<QueryResult> result = engine.Execute(query);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      ExpectResultsBitIdentical(IsolatedTruth(db, query), *result);
    }
  }
  // The schedule actually exercised eviction (or rejection at minimum).
  const pool::SubplanCacheStats stats = cache.stats();
  EXPECT_GT(stats.evictions + stats.rejected, 0u);
}

TEST(SubplanCacheEngineTest, DisabledViaExecOptionsReportsBypass) {
  const tpch::Database& db = SmallDb();
  SubplanCache cache(SubplanCacheOptions{});
  EngineOptions options;
  options.subplan_cache = &cache;
  options.exec.use_subplan_cache = false;
  Engine engine(&db, options);

  Result<QueryResult> result = engine.Execute(queries::Q5());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->metrics.subplan_cache_hits, 0);
  EXPECT_EQ(result->metrics.subplan_cache_misses, 0);
  EXPECT_EQ(cache.stats().hits + cache.stats().misses, 0u);
  ExpectResultsBitIdentical(IsolatedTruth(db, queries::Q5()), *result);
}

TEST(SubplanCacheEngineTest, ExplainAnalyzeReportsPerSegmentOutcome) {
  const tpch::Database& db = SmallDb();
  SubplanCache cache(SubplanCacheOptions{});
  EngineOptions options;
  options.subplan_cache = &cache;
  Engine engine(&db, options);

  Result<ExplainAnalyzeReport> cold = ExplainAnalyze(engine, queries::Q14());
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_NE(cold->ToString().find("cache: miss"), std::string::npos);
  EXPECT_NE(cold->ToString().find("subplan_cache: hits=0"),
            std::string::npos);

  Result<ExplainAnalyzeReport> warm = ExplainAnalyze(engine, queries::Q14());
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_NE(warm->ToString().find("cache: hit"), std::string::npos);
  EXPECT_EQ(warm->ToString().find("cache: miss"), std::string::npos);
  EXPECT_GT(warm->metrics.subplan_cache_hits, 0);
  // The JSON report carries the same per-segment outcome.
  EXPECT_NE(warm->ToJson().find("\"subplan_cache\":\"hit\""),
            std::string::npos);
  // Simulated timing identical cold vs warm: the hit replays the simulation.
  EXPECT_EQ(cold->metrics.elapsed_ms, warm->metrics.elapsed_ms);
}

/// The service-owned cache across concurrent workers: a hot repeated mix
/// reaches warm steady state (the check.sh gate), every query stays
/// bit-identical to the serial cache-less baseline, and the per-query
/// outcome counters aggregate into ServiceStats.
TEST(SubplanCacheServiceTest, SharedCacheHitsAcrossWorkersBitIdentical) {
  const tpch::Database& db = SmallDb();

  std::vector<std::pair<std::string, LogicalQuery>> mix;
  for (int round = 0; round < 8; ++round) {
    for (const auto& [name, query] : queries::EvaluationSuite()) {
      if (name == "Q5" || name == "Q14") {
        mix.emplace_back(name + "#" + std::to_string(round), query);
      }
    }
  }

  std::vector<QueryResult> truth;
  truth.reserve(mix.size());
  for (auto& [name, query] : mix) truth.push_back(IsolatedTruth(db, query));

  ServiceOptions options;
  options.num_workers = 4;
  options.queue_capacity = mix.size();
  QueryService service(&db, options);
  std::vector<QueryHandle> handles;
  for (auto& [name, query] : mix) {
    Result<QueryHandle> submitted = service.Submit(name, query);
    ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
    handles.push_back(submitted.take());
  }
  for (size_t i = 0; i < handles.size(); ++i) {
    SCOPED_TRACE(mix[i].first);
    const Result<QueryResult>& result = handles[i].Await();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectResultsBitIdentical(truth[i], *result);
  }
  service.Shutdown();

  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.completed, mix.size());
  EXPECT_GE(stats.SubplanHitRate(), 0.8) << stats.ToString();
  // All but the first round of each query class had hits.
  EXPECT_GE(stats.queries_with_cache_hits, mix.size() - 2 * 4);
  // Shared scans really were shared: rows served from the cache exceed what
  // any single cold pass scans.
  EXPECT_GT(stats.scan_rows_shared, 0u);
  EXPECT_NE(stats.ToString().find("subplan_cache_hits="), std::string::npos);
}

/// Chaos overlap: concurrent repeats under fault injection with retries.
/// Fault-injected executions bypass the cache entirely (a retried kernel
/// abort must not publish partial state), so with faults on every query the
/// cache stays silent and result tables still match the isolated truth.
/// Simulated counters legitimately differ here — channel faults degrade
/// segments to kernel-at-a-time — so only the tables are compared.
TEST(SubplanCacheServiceTest, FaultInjectionBypassesCacheAndStaysExact) {
  const tpch::Database& db = SmallDb();
  const LogicalQuery q14 = queries::Q14();
  const QueryResult truth = IsolatedTruth(db, q14);

  ServiceOptions options;
  options.num_workers = 4;
  options.queue_capacity = 64;
  options.fault.seed = 0x5eedULL;
  options.fault.kernel_abort_rate = 0.05;
  options.fault.channel_alloc_fail_rate = 0.05;
  options.retry.max_attempts = 8;  // enough that every query eventually lands
  QueryService service(&db, options);

  std::vector<QueryHandle> handles;
  for (int i = 0; i < 24; ++i) {
    Result<QueryHandle> submitted =
        service.Submit("q14#" + std::to_string(i), q14);
    ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
    handles.push_back(submitted.take());
  }
  int completed = 0;
  for (QueryHandle& handle : handles) {
    const Result<QueryResult>& result = handle.Await();
    if (!result.ok()) {
      // Only retry exhaustion is acceptable under injected faults.
      EXPECT_EQ(result.status().code(), StatusCode::kTransientDeviceError)
          << result.status().ToString();
      continue;
    }
    ++completed;
    ExpectTablesBitIdentical(truth.table, result->table);
  }
  service.Shutdown();
  ASSERT_GT(completed, 0);

  const ServiceStats stats = service.Stats();
  // The bypass is total: not one lookup, publish or attach happened.
  EXPECT_EQ(stats.subplan_cache_hits, 0u);
  EXPECT_EQ(stats.subplan_cache_misses, 0u);
  EXPECT_EQ(stats.subplan_attaches, 0u);
  EXPECT_EQ(stats.queries_with_cache_hits, 0u);
}

/// ServiceOptions::subplan_cache=false nulls the engine wiring: no cache
/// traffic, identical results.
TEST(SubplanCacheServiceTest, DisabledServiceMatchesIsolatedTruth) {
  const tpch::Database& db = SmallDb();
  const LogicalQuery q5 = queries::Q5();
  const QueryResult truth = IsolatedTruth(db, q5);

  ServiceOptions options;
  options.num_workers = 2;
  options.queue_capacity = 16;
  options.subplan_cache = false;
  QueryService service(&db, options);
  std::vector<QueryHandle> handles;
  for (int i = 0; i < 8; ++i) {
    Result<QueryHandle> submitted =
        service.Submit("q5#" + std::to_string(i), q5);
    ASSERT_TRUE(submitted.ok());
    handles.push_back(submitted.take());
  }
  for (QueryHandle& handle : handles) {
    const Result<QueryResult>& result = handle.Await();
    ASSERT_TRUE(result.ok());
    ExpectResultsBitIdentical(truth, *result);
  }
  service.Shutdown();
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.subplan_cache_hits + stats.subplan_cache_misses, 0u);
}

// ---------------------------------------------------------------------------
// TuningCache bounding (satellite of the subplan-cache work: the same
// eviction policy now bounds the tuning memo).
// ---------------------------------------------------------------------------

TEST(TuningCacheBoundingTest, EvictsPastMaxEntriesAndCountsBytes) {
  model::TuningCache cache(/*max_entries=*/4);
  model::TuningChoice choice;
  for (int i = 0; i < 10; ++i) {
    cache.Insert("seg-" + std::to_string(i), choice);
  }
  EXPECT_EQ(cache.size(), 4u);
  const model::TuningCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 6u);
  EXPECT_EQ(stats.entries, 4);
  EXPECT_GT(stats.bytes, 0);

  // The most recent insertions survived the LRU-windowed policy.
  EXPECT_TRUE(cache.Lookup("seg-9").has_value());
  EXPECT_FALSE(cache.Lookup("seg-0").has_value());
}

TEST(TuningCacheBoundingTest, ReusedEntriesSurviveTheEvictionWindow) {
  model::TuningCache cache(/*max_entries=*/4);
  model::TuningChoice choice;
  for (int i = 0; i < 4; ++i) {
    cache.Insert("seg-" + std::to_string(i), choice);
  }
  // Heat up seg-0: repeated hits raise its score above its window peers.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(cache.Lookup("seg-0").has_value());
  }
  cache.Insert("seg-new", choice);  // forces one eviction
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_TRUE(cache.Lookup("seg-0").has_value());  // hot entry kept
}

TEST(TuningCacheBoundingTest, ExchangePlansAreBoundedIndependently) {
  model::TuningCache cache(/*max_entries=*/2);
  model::ExchangePlan plan;
  for (int i = 0; i < 5; ++i) {
    cache.InsertExchangePlan("xp-" + std::to_string(i), plan);
  }
  EXPECT_EQ(cache.exchange_size(), 2u);
  EXPECT_GE(cache.stats().evictions, 3u);
  cache.Clear();
  EXPECT_EQ(cache.stats().bytes, 0);
  EXPECT_EQ(cache.stats().entries, 0);
}

}  // namespace
}  // namespace gpl
