#include <gtest/gtest.h>

#include <cmath>

#include <chrono>

#include "common/math_util.h"
#include "model/calibration.h"
#include "model/cost_model.h"
#include "model/plan_tuner.h"

namespace gpl {
namespace model {
namespace {

const sim::Simulator& AmdSim() {
  static const sim::Simulator* s = new sim::Simulator(sim::DeviceSpec::AmdA10());
  return *s;
}

const CalibrationTable& AmdCalibration() {
  static const CalibrationTable* t =
      new CalibrationTable(CalibrationTable::Run(AmdSim()));
  return *t;
}

TEST(CalibrationTest, GridIsComplete) {
  const CalibrationTable& t = AmdCalibration();
  EXPECT_EQ(t.points().size(), t.channel_grid().size() *
                                   t.packet_grid().size() *
                                   t.data_grid().size());
  for (const CalibrationPoint& p : t.points()) {
    EXPECT_GT(p.throughput_bytes_per_cycle, 0.0);
  }
}

TEST(CalibrationTest, NvidiaGridHasNoPacketDimension) {
  sim::Simulator nvidia(sim::DeviceSpec::NvidiaK40());
  const CalibrationTable t = CalibrationTable::Run(nvidia);
  EXPECT_EQ(t.packet_grid().size(), 1u);  // Eq. 11: Γ(n, d) only
}

TEST(CalibrationTest, MoreChannelsHelpUpToPortLimit) {
  const CalibrationTable& t = AmdCalibration();
  const int64_t d = 4096 * 1024 * 4;
  const double t1 = t.Throughput(1, 16, d);
  const double t8 = t.Throughput(8, 16, d);
  EXPECT_GT(t8, t1);
}

TEST(CalibrationTest, ThroughputVariesWithDataSize) {
  // The Figure 2 shape: throughput peaks at an interior data size (cache
  // capacity) rather than growing without bound.
  const CalibrationTable& t = AmdCalibration();
  double best_d = 0.0, best_tp = 0.0;
  for (int64_t d : t.data_grid()) {
    const double tp = t.Throughput(8, 16, d);
    if (tp > best_tp) {
      best_tp = tp;
      best_d = static_cast<double>(d);
    }
  }
  EXPECT_LT(best_d, static_cast<double>(t.data_grid().back()))
      << "largest size should thrash the cache";
}

TEST(CalibrationTest, BestConfigWithinSearchedGrid) {
  const CalibrationTable& t = AmdCalibration();
  const CalibrationTable::BestConfig best = t.Best(MiB(4));
  EXPECT_GE(best.config.num_channels, 1);
  EXPECT_LE(best.config.num_channels, 32);
  EXPECT_GT(best.throughput_bytes_per_cycle, 0.0);
}

TEST(CalibrationTest, LookupInterpolatesUnseenPoints) {
  const CalibrationTable& t = AmdCalibration();
  const double tp = t.Throughput(3, 24, 3 * 1000 * 1000);
  EXPECT_GT(tp, 0.0);
}

TEST(ProducerConsumerTest, TransfersAllData) {
  sim::ChannelConfig config;
  config.num_channels = 4;
  const sim::SimResult r = RunProducerConsumer(AmdSim(), config, MiB(4));
  EXPECT_GT(r.elapsed_cycles(), 0.0);
  EXPECT_EQ(r.counters.bytes_via_channel, MiB(4));
}

// ---- Cost model ----

SegmentDesc TwoStageSegment(double rows, double lambda) {
  SegmentDesc desc;
  desc.input_bytes = rows * 8.0;
  StageDesc map;
  map.timing.name = "k_map";
  map.timing.compute_inst_per_row = 6.0;
  map.timing.mem_inst_per_row = 2.0;
  map.timing.private_bytes_per_item = 48;
  map.rows_in = rows;
  map.bytes_in = rows * 8.0;
  map.rows_out = rows * lambda;
  map.bytes_out = rows * lambda * 8.0;
  StageDesc reduce;
  reduce.timing.name = "k_reduce";
  reduce.timing.compute_inst_per_row = 8.0;
  reduce.timing.mem_inst_per_row = 2.0;
  reduce.timing.private_bytes_per_item = 96;
  reduce.rows_in = map.rows_out;
  reduce.bytes_in = map.bytes_out;
  reduce.rows_out = 1;
  reduce.bytes_out = 8;
  desc.stages = {map, reduce};
  return desc;
}

SegmentParams DefaultParams(int stages) {
  SegmentParams params;
  params.tile_bytes = MiB(4);
  params.workgroups.assign(static_cast<size_t>(stages), 16);
  params.channels.assign(static_cast<size_t>(std::max(0, stages - 1)),
                         sim::ChannelConfig{});
  return params;
}

TEST(CostModelTest, EstimatePositiveAndFinite) {
  CostModel model(sim::DeviceSpec::AmdA10(), &AmdCalibration());
  const SegmentEstimate est =
      model.EstimateSegment(TwoStageSegment(1e6, 0.2), DefaultParams(2));
  EXPECT_GT(est.total_cycles, 0.0);
  EXPECT_TRUE(std::isfinite(est.total_cycles));
  EXPECT_EQ(est.kernel_cycles.size(), 2u);
}

TEST(CostModelTest, MoreRowsCostMore) {
  CostModel model(sim::DeviceSpec::AmdA10(), &AmdCalibration());
  const double small =
      model.EstimateSegment(TwoStageSegment(1e5, 0.2), DefaultParams(2))
          .total_cycles;
  const double large =
      model.EstimateSegment(TwoStageSegment(4e6, 0.2), DefaultParams(2))
          .total_cycles;
  EXPECT_GT(large, small);
}

TEST(CostModelTest, HigherLambdaCostsMoreChannelTraffic) {
  CostModel model(sim::DeviceSpec::AmdA10(), &AmdCalibration());
  const SegmentEstimate low =
      model.EstimateSegment(TwoStageSegment(2e6, 0.05), DefaultParams(2));
  const SegmentEstimate high =
      model.EstimateSegment(TwoStageSegment(2e6, 0.9), DefaultParams(2));
  EXPECT_GT(high.channel_cycles, low.channel_cycles);
}

TEST(CostModelTest, TinyTilesPayDispatchOverhead) {
  CostModel model(sim::DeviceSpec::AmdA10(), &AmdCalibration());
  SegmentParams tiny = DefaultParams(2);
  tiny.tile_bytes = KiB(64);
  SegmentParams large = DefaultParams(2);
  large.tile_bytes = MiB(1);
  const SegmentDesc seg = TwoStageSegment(4e6, 0.2);
  EXPECT_GT(model.EstimateSegment(seg, tiny).total_cycles,
            model.EstimateSegment(seg, large).total_cycles);
}

TEST(CostModelTest, DelayReflectsImbalance) {
  CostModel model(sim::DeviceSpec::AmdA10(), &AmdCalibration());
  // Balanced: both stages same work. Imbalanced: map does 10x.
  SegmentDesc balanced = TwoStageSegment(2e6, 1.0);
  SegmentDesc imbalanced = balanced;
  imbalanced.stages[1].timing.compute_inst_per_row = 200.0;
  const SegmentEstimate b = model.EstimateSegment(balanced, DefaultParams(2));
  const SegmentEstimate i = model.EstimateSegment(imbalanced, DefaultParams(2));
  EXPECT_GT(i.delay_cycles, b.delay_cycles);
}

// ---- Tuner ----

TEST(TunerTest, PicksFromGrids) {
  CostModel model(sim::DeviceSpec::AmdA10(), &AmdCalibration());
  const TuningChoice choice =
      TuneSegment(model, TwoStageSegment(4e6, 0.2), AmdCalibration());
  const std::vector<int64_t> tiles = TileSizeGrid();
  EXPECT_NE(std::find(tiles.begin(), tiles.end(), choice.params.tile_bytes),
            tiles.end());
  ASSERT_EQ(choice.params.workgroups.size(), 2u);
  for (int wg : choice.params.workgroups) {
    EXPECT_EQ(wg % sim::DeviceSpec::AmdA10().num_cus, 0)
        << "wg_Ki must be a multiple of #CU";
  }
  EXPECT_GT(choice.estimate.total_cycles, 0.0);
}

TEST(TunerTest, ChoiceIsGridOptimal) {
  CostModel model(sim::DeviceSpec::AmdA10(), &AmdCalibration());
  const SegmentDesc seg = TwoStageSegment(4e6, 0.2);
  const TuningChoice choice = TuneSegment(model, seg, AmdCalibration());
  for (int64_t tile : TileSizeGrid()) {
    TuningOverrides pin;
    pin.tile_bytes = tile;
    const TuningChoice pinned = TuneSegment(model, seg, AmdCalibration(), pin);
    EXPECT_LE(choice.estimate.total_cycles,
              pinned.estimate.total_cycles + 1e-6)
        << "tile " << tile;
  }
}

TEST(TunerTest, OverridesAreRespected) {
  CostModel model(sim::DeviceSpec::AmdA10(), &AmdCalibration());
  TuningOverrides overrides;
  overrides.tile_bytes = MiB(2);
  overrides.workgroups_per_kernel = 24;
  overrides.has_channel = true;
  overrides.channel.num_channels = 2;
  overrides.channel.packet_bytes = 64;
  const TuningChoice choice =
      TuneSegment(model, TwoStageSegment(2e6, 0.2), AmdCalibration(), overrides);
  EXPECT_EQ(choice.params.tile_bytes, MiB(2));
  for (int wg : choice.params.workgroups) EXPECT_EQ(wg, 24);
  ASSERT_EQ(choice.params.channels.size(), 1u);
  EXPECT_EQ(choice.params.channels[0].num_channels, 2);
  EXPECT_EQ(choice.params.channels[0].packet_bytes, 64);
}

TEST(TunerTest, FinishesWithinFiveMilliseconds) {
  // Section 4.1: "the elapsed time for query optimization is generally
  // smaller than 5 ms".
  CostModel model(sim::DeviceSpec::AmdA10(), &AmdCalibration());
  const SegmentDesc seg = TwoStageSegment(4e6, 0.2);
  const auto start = std::chrono::steady_clock::now();
  TuneSegment(model, seg, AmdCalibration());
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  EXPECT_LT(ms, 5.0);
}

}  // namespace
}  // namespace model
}  // namespace gpl
