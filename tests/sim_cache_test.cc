#include <gtest/gtest.h>

#include "common/math_util.h"
#include "sim/cache_model.h"

namespace gpl {
namespace sim {
namespace {

TEST(CacheModelTest, StreamingHitRatioFromSpatialLocality) {
  CacheModel cache(MiB(4), 64);
  EXPECT_DOUBLE_EQ(cache.StreamingHitRatio(4), 1.0 - 4.0 / 64.0);
  EXPECT_DOUBLE_EQ(cache.StreamingHitRatio(8), 1.0 - 8.0 / 64.0);
  EXPECT_DOUBLE_EQ(cache.StreamingHitRatio(64), 0.0);
}

TEST(CacheModelTest, StreamingClampsWidth) {
  CacheModel cache(MiB(4), 64);
  EXPECT_DOUBLE_EQ(cache.StreamingHitRatio(0), cache.StreamingHitRatio(1));
  EXPECT_DOUBLE_EQ(cache.StreamingHitRatio(1024), 0.0);
}

TEST(CacheModelTest, RandomHitCapacityLimited) {
  CacheModel cache(MiB(4));
  // Working set half the cache: everything fits.
  EXPECT_DOUBLE_EQ(cache.RandomHitRatio(MiB(2), 0), 1.0);
  // Working set twice the cache: half the accesses hit.
  EXPECT_DOUBLE_EQ(cache.RandomHitRatio(MiB(8), 0), 0.5);
}

TEST(CacheModelTest, RandomHitDegradesWithCompetition) {
  CacheModel cache(MiB(4));
  const double alone = cache.RandomHitRatio(MiB(4), 0);
  const double contended = cache.RandomHitRatio(MiB(4), MiB(2));
  const double crowded = cache.RandomHitRatio(MiB(4), MiB(4));
  EXPECT_GT(alone, contended);
  EXPECT_GT(contended, crowded);
  EXPECT_DOUBLE_EQ(crowded, 0.0);
}

TEST(CacheModelTest, RandomHitEmptyWorkingSetIsFullHit) {
  CacheModel cache(MiB(4));
  EXPECT_DOUBLE_EQ(cache.RandomHitRatio(0, MiB(100)), 1.0);
}

TEST(CacheModelTest, ChannelResidencyFullWhenFits) {
  CacheModel cache(MiB(4));
  EXPECT_DOUBLE_EQ(cache.ChannelResidency(KiB(256), MiB(1)), 1.0);
}

TEST(CacheModelTest, ChannelResidencyDropsWhenThrashing) {
  CacheModel cache(MiB(4));
  // 2 MB in flight but only 4 MB - 3 MB = 1 MB available.
  EXPECT_DOUBLE_EQ(cache.ChannelResidency(MiB(2), MiB(3)), 0.5);
  // Competing working set alone exceeds the cache.
  EXPECT_DOUBLE_EQ(cache.ChannelResidency(MiB(1), MiB(8)), 0.0);
}

class CacheMonotonicityTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(CacheMonotonicityTest, ResidencyMonotonicallyDecreasesWithCompetition) {
  CacheModel cache(MiB(4));
  const int64_t inflight = GetParam();
  double prev = 1.1;
  for (int64_t competing = 0; competing <= MiB(8); competing += MiB(1)) {
    const double r = cache.ChannelResidency(inflight, competing);
    EXPECT_LE(r, prev + 1e-12);
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0);
    prev = r;
  }
}

INSTANTIATE_TEST_SUITE_P(InflightSizes, CacheMonotonicityTest,
                         ::testing::Values(KiB(64), KiB(512), MiB(2), MiB(16)));

class RandomHitMonotonicityTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(RandomHitMonotonicityTest, HitRatioDecreasesWithWorkingSet) {
  CacheModel cache(GetParam());
  double prev = 1.1;
  for (int64_t ws = KiB(64); ws <= MiB(64); ws *= 2) {
    const double h = cache.RandomHitRatio(ws, 0);
    EXPECT_LE(h, prev + 1e-12);
    prev = h;
  }
}

INSTANTIATE_TEST_SUITE_P(CacheSizes, RandomHitMonotonicityTest,
                         ::testing::Values(MiB(1), MiB(4), MiB(3) / 2));

}  // namespace
}  // namespace sim
}  // namespace gpl
