# Empty dependencies file for sim_occupancy_test.
# This may be replaced when dependencies are built.
