file(REMOVE_RECURSE
  "CMakeFiles/sim_occupancy_test.dir/sim_occupancy_test.cc.o"
  "CMakeFiles/sim_occupancy_test.dir/sim_occupancy_test.cc.o.d"
  "sim_occupancy_test"
  "sim_occupancy_test.pdb"
  "sim_occupancy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_occupancy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
