# Empty compiler generated dependencies file for queries_extended_test.
# This may be replaced when dependencies are built.
