file(REMOVE_RECURSE
  "CMakeFiles/queries_extended_test.dir/queries_extended_test.cc.o"
  "CMakeFiles/queries_extended_test.dir/queries_extended_test.cc.o.d"
  "queries_extended_test"
  "queries_extended_test.pdb"
  "queries_extended_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queries_extended_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
