file(REMOVE_RECURSE
  "CMakeFiles/selinger_test.dir/selinger_test.cc.o"
  "CMakeFiles/selinger_test.dir/selinger_test.cc.o.d"
  "selinger_test"
  "selinger_test.pdb"
  "selinger_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selinger_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
