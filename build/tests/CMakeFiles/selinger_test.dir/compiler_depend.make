# Empty compiler generated dependencies file for selinger_test.
# This may be replaced when dependencies are built.
