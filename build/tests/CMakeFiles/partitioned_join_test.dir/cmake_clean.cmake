file(REMOVE_RECURSE
  "CMakeFiles/partitioned_join_test.dir/partitioned_join_test.cc.o"
  "CMakeFiles/partitioned_join_test.dir/partitioned_join_test.cc.o.d"
  "partitioned_join_test"
  "partitioned_join_test.pdb"
  "partitioned_join_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partitioned_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
