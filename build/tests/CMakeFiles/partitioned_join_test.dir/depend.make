# Empty dependencies file for partitioned_join_test.
# This may be replaced when dependencies are built.
