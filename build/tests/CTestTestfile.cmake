# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/date_test[1]_include.cmake")
include("/root/repo/build/tests/tpch_test[1]_include.cmake")
include("/root/repo/build/tests/tbl_io_test[1]_include.cmake")
include("/root/repo/build/tests/partitioned_join_test[1]_include.cmake")
include("/root/repo/build/tests/sim_occupancy_test[1]_include.cmake")
include("/root/repo/build/tests/sim_cache_test[1]_include.cmake")
include("/root/repo/build/tests/sim_channel_test[1]_include.cmake")
include("/root/repo/build/tests/sim_engine_test[1]_include.cmake")
include("/root/repo/build/tests/sim_determinism_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/expr_test[1]_include.cmake")
include("/root/repo/build/tests/expr_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/hash_table_test[1]_include.cmake")
include("/root/repo/build/tests/primitives_test[1]_include.cmake")
include("/root/repo/build/tests/cardinality_test[1]_include.cmake")
include("/root/repo/build/tests/selinger_test[1]_include.cmake")
include("/root/repo/build/tests/segment_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/queries_test[1]_include.cmake")
include("/root/repo/build/tests/queries_extended_test[1]_include.cmake")
include("/root/repo/build/tests/ref_test[1]_include.cmake")
