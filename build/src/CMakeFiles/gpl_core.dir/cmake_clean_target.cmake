file(REMOVE_RECURSE
  "libgpl_core.a"
)
