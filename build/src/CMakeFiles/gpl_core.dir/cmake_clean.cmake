file(REMOVE_RECURSE
  "CMakeFiles/gpl_core.dir/core/gpl_executor.cc.o"
  "CMakeFiles/gpl_core.dir/core/gpl_executor.cc.o.d"
  "CMakeFiles/gpl_core.dir/core/pipeline.cc.o"
  "CMakeFiles/gpl_core.dir/core/pipeline.cc.o.d"
  "CMakeFiles/gpl_core.dir/core/tiling.cc.o"
  "CMakeFiles/gpl_core.dir/core/tiling.cc.o.d"
  "libgpl_core.a"
  "libgpl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
