# Empty compiler generated dependencies file for gpl_core.
# This may be replaced when dependencies are built.
