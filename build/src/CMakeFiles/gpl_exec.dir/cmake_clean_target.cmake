file(REMOVE_RECURSE
  "libgpl_exec.a"
)
