file(REMOVE_RECURSE
  "CMakeFiles/gpl_exec.dir/exec/expr.cc.o"
  "CMakeFiles/gpl_exec.dir/exec/expr.cc.o.d"
  "CMakeFiles/gpl_exec.dir/exec/hash_table.cc.o"
  "CMakeFiles/gpl_exec.dir/exec/hash_table.cc.o.d"
  "CMakeFiles/gpl_exec.dir/exec/partitioned_join.cc.o"
  "CMakeFiles/gpl_exec.dir/exec/partitioned_join.cc.o.d"
  "CMakeFiles/gpl_exec.dir/exec/primitives.cc.o"
  "CMakeFiles/gpl_exec.dir/exec/primitives.cc.o.d"
  "libgpl_exec.a"
  "libgpl_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpl_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
