# Empty compiler generated dependencies file for gpl_exec.
# This may be replaced when dependencies are built.
