
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/expr.cc" "src/CMakeFiles/gpl_exec.dir/exec/expr.cc.o" "gcc" "src/CMakeFiles/gpl_exec.dir/exec/expr.cc.o.d"
  "/root/repo/src/exec/hash_table.cc" "src/CMakeFiles/gpl_exec.dir/exec/hash_table.cc.o" "gcc" "src/CMakeFiles/gpl_exec.dir/exec/hash_table.cc.o.d"
  "/root/repo/src/exec/partitioned_join.cc" "src/CMakeFiles/gpl_exec.dir/exec/partitioned_join.cc.o" "gcc" "src/CMakeFiles/gpl_exec.dir/exec/partitioned_join.cc.o.d"
  "/root/repo/src/exec/primitives.cc" "src/CMakeFiles/gpl_exec.dir/exec/primitives.cc.o" "gcc" "src/CMakeFiles/gpl_exec.dir/exec/primitives.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gpl_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpl_tpch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
