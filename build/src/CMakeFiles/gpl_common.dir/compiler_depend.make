# Empty compiler generated dependencies file for gpl_common.
# This may be replaced when dependencies are built.
