file(REMOVE_RECURSE
  "libgpl_common.a"
)
