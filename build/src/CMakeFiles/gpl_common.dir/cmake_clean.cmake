file(REMOVE_RECURSE
  "CMakeFiles/gpl_common.dir/common/logging.cc.o"
  "CMakeFiles/gpl_common.dir/common/logging.cc.o.d"
  "CMakeFiles/gpl_common.dir/common/random.cc.o"
  "CMakeFiles/gpl_common.dir/common/random.cc.o.d"
  "CMakeFiles/gpl_common.dir/common/status.cc.o"
  "CMakeFiles/gpl_common.dir/common/status.cc.o.d"
  "libgpl_common.a"
  "libgpl_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpl_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
