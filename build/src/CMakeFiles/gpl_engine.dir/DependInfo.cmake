
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/engine.cc" "src/CMakeFiles/gpl_engine.dir/engine/engine.cc.o" "gcc" "src/CMakeFiles/gpl_engine.dir/engine/engine.cc.o.d"
  "/root/repo/src/engine/kbe_engine.cc" "src/CMakeFiles/gpl_engine.dir/engine/kbe_engine.cc.o" "gcc" "src/CMakeFiles/gpl_engine.dir/engine/kbe_engine.cc.o.d"
  "/root/repo/src/engine/metrics.cc" "src/CMakeFiles/gpl_engine.dir/engine/metrics.cc.o" "gcc" "src/CMakeFiles/gpl_engine.dir/engine/metrics.cc.o.d"
  "/root/repo/src/engine/ocelot_engine.cc" "src/CMakeFiles/gpl_engine.dir/engine/ocelot_engine.cc.o" "gcc" "src/CMakeFiles/gpl_engine.dir/engine/ocelot_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gpl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpl_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpl_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpl_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpl_tpch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpl_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
