file(REMOVE_RECURSE
  "CMakeFiles/gpl_engine.dir/engine/engine.cc.o"
  "CMakeFiles/gpl_engine.dir/engine/engine.cc.o.d"
  "CMakeFiles/gpl_engine.dir/engine/kbe_engine.cc.o"
  "CMakeFiles/gpl_engine.dir/engine/kbe_engine.cc.o.d"
  "CMakeFiles/gpl_engine.dir/engine/metrics.cc.o"
  "CMakeFiles/gpl_engine.dir/engine/metrics.cc.o.d"
  "CMakeFiles/gpl_engine.dir/engine/ocelot_engine.cc.o"
  "CMakeFiles/gpl_engine.dir/engine/ocelot_engine.cc.o.d"
  "libgpl_engine.a"
  "libgpl_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpl_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
