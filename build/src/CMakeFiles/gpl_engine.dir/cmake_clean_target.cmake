file(REMOVE_RECURSE
  "libgpl_engine.a"
)
