# Empty dependencies file for gpl_engine.
# This may be replaced when dependencies are built.
