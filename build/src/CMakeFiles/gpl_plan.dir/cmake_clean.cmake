file(REMOVE_RECURSE
  "CMakeFiles/gpl_plan.dir/plan/cardinality.cc.o"
  "CMakeFiles/gpl_plan.dir/plan/cardinality.cc.o.d"
  "CMakeFiles/gpl_plan.dir/plan/physical_plan.cc.o"
  "CMakeFiles/gpl_plan.dir/plan/physical_plan.cc.o.d"
  "CMakeFiles/gpl_plan.dir/plan/segment.cc.o"
  "CMakeFiles/gpl_plan.dir/plan/segment.cc.o.d"
  "CMakeFiles/gpl_plan.dir/plan/selinger.cc.o"
  "CMakeFiles/gpl_plan.dir/plan/selinger.cc.o.d"
  "libgpl_plan.a"
  "libgpl_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpl_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
