# Empty dependencies file for gpl_plan.
# This may be replaced when dependencies are built.
