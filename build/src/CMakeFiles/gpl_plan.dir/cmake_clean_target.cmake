file(REMOVE_RECURSE
  "libgpl_plan.a"
)
