file(REMOVE_RECURSE
  "CMakeFiles/gpl_model.dir/model/calibration.cc.o"
  "CMakeFiles/gpl_model.dir/model/calibration.cc.o.d"
  "CMakeFiles/gpl_model.dir/model/cost_model.cc.o"
  "CMakeFiles/gpl_model.dir/model/cost_model.cc.o.d"
  "CMakeFiles/gpl_model.dir/model/plan_tuner.cc.o"
  "CMakeFiles/gpl_model.dir/model/plan_tuner.cc.o.d"
  "libgpl_model.a"
  "libgpl_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpl_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
