file(REMOVE_RECURSE
  "libgpl_model.a"
)
