# Empty dependencies file for gpl_model.
# This may be replaced when dependencies are built.
