file(REMOVE_RECURSE
  "libgpl_storage.a"
)
