
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/column.cc" "src/CMakeFiles/gpl_storage.dir/storage/column.cc.o" "gcc" "src/CMakeFiles/gpl_storage.dir/storage/column.cc.o.d"
  "/root/repo/src/storage/dictionary.cc" "src/CMakeFiles/gpl_storage.dir/storage/dictionary.cc.o" "gcc" "src/CMakeFiles/gpl_storage.dir/storage/dictionary.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/gpl_storage.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/gpl_storage.dir/storage/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gpl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
