# Empty dependencies file for gpl_storage.
# This may be replaced when dependencies are built.
