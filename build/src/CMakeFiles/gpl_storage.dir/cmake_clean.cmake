file(REMOVE_RECURSE
  "CMakeFiles/gpl_storage.dir/storage/column.cc.o"
  "CMakeFiles/gpl_storage.dir/storage/column.cc.o.d"
  "CMakeFiles/gpl_storage.dir/storage/dictionary.cc.o"
  "CMakeFiles/gpl_storage.dir/storage/dictionary.cc.o.d"
  "CMakeFiles/gpl_storage.dir/storage/table.cc.o"
  "CMakeFiles/gpl_storage.dir/storage/table.cc.o.d"
  "libgpl_storage.a"
  "libgpl_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpl_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
