# Empty compiler generated dependencies file for gpl_ref.
# This may be replaced when dependencies are built.
