file(REMOVE_RECURSE
  "CMakeFiles/gpl_ref.dir/ref/reference_executor.cc.o"
  "CMakeFiles/gpl_ref.dir/ref/reference_executor.cc.o.d"
  "libgpl_ref.a"
  "libgpl_ref.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpl_ref.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
