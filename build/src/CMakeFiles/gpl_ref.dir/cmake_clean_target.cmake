file(REMOVE_RECURSE
  "libgpl_ref.a"
)
