file(REMOVE_RECURSE
  "CMakeFiles/gpl_sim.dir/sim/cache_model.cc.o"
  "CMakeFiles/gpl_sim.dir/sim/cache_model.cc.o.d"
  "CMakeFiles/gpl_sim.dir/sim/channel.cc.o"
  "CMakeFiles/gpl_sim.dir/sim/channel.cc.o.d"
  "CMakeFiles/gpl_sim.dir/sim/counters.cc.o"
  "CMakeFiles/gpl_sim.dir/sim/counters.cc.o.d"
  "CMakeFiles/gpl_sim.dir/sim/device.cc.o"
  "CMakeFiles/gpl_sim.dir/sim/device.cc.o.d"
  "CMakeFiles/gpl_sim.dir/sim/engine.cc.o"
  "CMakeFiles/gpl_sim.dir/sim/engine.cc.o.d"
  "CMakeFiles/gpl_sim.dir/sim/occupancy.cc.o"
  "CMakeFiles/gpl_sim.dir/sim/occupancy.cc.o.d"
  "libgpl_sim.a"
  "libgpl_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpl_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
