# Empty dependencies file for gpl_sim.
# This may be replaced when dependencies are built.
