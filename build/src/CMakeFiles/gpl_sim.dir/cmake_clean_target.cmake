file(REMOVE_RECURSE
  "libgpl_sim.a"
)
