
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache_model.cc" "src/CMakeFiles/gpl_sim.dir/sim/cache_model.cc.o" "gcc" "src/CMakeFiles/gpl_sim.dir/sim/cache_model.cc.o.d"
  "/root/repo/src/sim/channel.cc" "src/CMakeFiles/gpl_sim.dir/sim/channel.cc.o" "gcc" "src/CMakeFiles/gpl_sim.dir/sim/channel.cc.o.d"
  "/root/repo/src/sim/counters.cc" "src/CMakeFiles/gpl_sim.dir/sim/counters.cc.o" "gcc" "src/CMakeFiles/gpl_sim.dir/sim/counters.cc.o.d"
  "/root/repo/src/sim/device.cc" "src/CMakeFiles/gpl_sim.dir/sim/device.cc.o" "gcc" "src/CMakeFiles/gpl_sim.dir/sim/device.cc.o.d"
  "/root/repo/src/sim/engine.cc" "src/CMakeFiles/gpl_sim.dir/sim/engine.cc.o" "gcc" "src/CMakeFiles/gpl_sim.dir/sim/engine.cc.o.d"
  "/root/repo/src/sim/occupancy.cc" "src/CMakeFiles/gpl_sim.dir/sim/occupancy.cc.o" "gcc" "src/CMakeFiles/gpl_sim.dir/sim/occupancy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gpl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
