file(REMOVE_RECURSE
  "CMakeFiles/gpl_tpch.dir/tpch/date.cc.o"
  "CMakeFiles/gpl_tpch.dir/tpch/date.cc.o.d"
  "CMakeFiles/gpl_tpch.dir/tpch/dbgen.cc.o"
  "CMakeFiles/gpl_tpch.dir/tpch/dbgen.cc.o.d"
  "CMakeFiles/gpl_tpch.dir/tpch/tbl_io.cc.o"
  "CMakeFiles/gpl_tpch.dir/tpch/tbl_io.cc.o.d"
  "CMakeFiles/gpl_tpch.dir/tpch/text.cc.o"
  "CMakeFiles/gpl_tpch.dir/tpch/text.cc.o.d"
  "libgpl_tpch.a"
  "libgpl_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpl_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
