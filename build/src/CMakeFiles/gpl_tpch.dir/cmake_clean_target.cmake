file(REMOVE_RECURSE
  "libgpl_tpch.a"
)
