
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tpch/date.cc" "src/CMakeFiles/gpl_tpch.dir/tpch/date.cc.o" "gcc" "src/CMakeFiles/gpl_tpch.dir/tpch/date.cc.o.d"
  "/root/repo/src/tpch/dbgen.cc" "src/CMakeFiles/gpl_tpch.dir/tpch/dbgen.cc.o" "gcc" "src/CMakeFiles/gpl_tpch.dir/tpch/dbgen.cc.o.d"
  "/root/repo/src/tpch/tbl_io.cc" "src/CMakeFiles/gpl_tpch.dir/tpch/tbl_io.cc.o" "gcc" "src/CMakeFiles/gpl_tpch.dir/tpch/tbl_io.cc.o.d"
  "/root/repo/src/tpch/text.cc" "src/CMakeFiles/gpl_tpch.dir/tpch/text.cc.o" "gcc" "src/CMakeFiles/gpl_tpch.dir/tpch/text.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gpl_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
