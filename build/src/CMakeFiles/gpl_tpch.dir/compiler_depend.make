# Empty compiler generated dependencies file for gpl_tpch.
# This may be replaced when dependencies are built.
