# Empty dependencies file for gpl_queries.
# This may be replaced when dependencies are built.
