file(REMOVE_RECURSE
  "CMakeFiles/gpl_queries.dir/queries/tpch_queries.cc.o"
  "CMakeFiles/gpl_queries.dir/queries/tpch_queries.cc.o.d"
  "CMakeFiles/gpl_queries.dir/queries/tpch_queries_extended.cc.o"
  "CMakeFiles/gpl_queries.dir/queries/tpch_queries_extended.cc.o.d"
  "libgpl_queries.a"
  "libgpl_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpl_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
