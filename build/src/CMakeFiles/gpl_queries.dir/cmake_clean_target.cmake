file(REMOVE_RECURSE
  "libgpl_queries.a"
)
