file(REMOVE_RECURSE
  "CMakeFiles/gplcli.dir/gplcli.cc.o"
  "CMakeFiles/gplcli.dir/gplcli.cc.o.d"
  "gplcli"
  "gplcli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gplcli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
