# Empty compiler generated dependencies file for gplcli.
# This may be replaced when dependencies are built.
