file(REMOVE_RECURSE
  "CMakeFiles/selectivity_study.dir/selectivity_study.cpp.o"
  "CMakeFiles/selectivity_study.dir/selectivity_study.cpp.o.d"
  "selectivity_study"
  "selectivity_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selectivity_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
