file(REMOVE_RECURSE
  "../bench/bench_fig11_model_error"
  "../bench/bench_fig11_model_error.pdb"
  "CMakeFiles/bench_fig11_model_error.dir/bench_fig11_model_error.cc.o"
  "CMakeFiles/bench_fig11_model_error.dir/bench_fig11_model_error.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_model_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
