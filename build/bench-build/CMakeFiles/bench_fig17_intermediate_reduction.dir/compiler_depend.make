# Empty compiler generated dependencies file for bench_fig17_intermediate_reduction.
# This may be replaced when dependencies are built.
