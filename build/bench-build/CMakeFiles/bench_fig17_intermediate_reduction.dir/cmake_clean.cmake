file(REMOVE_RECURSE
  "../bench/bench_fig17_intermediate_reduction"
  "../bench/bench_fig17_intermediate_reduction.pdb"
  "CMakeFiles/bench_fig17_intermediate_reduction.dir/bench_fig17_intermediate_reduction.cc.o"
  "CMakeFiles/bench_fig17_intermediate_reduction.dir/bench_fig17_intermediate_reduction.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_intermediate_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
