file(REMOVE_RECURSE
  "../bench/bench_ablation_concurrency"
  "../bench/bench_ablation_concurrency.pdb"
  "CMakeFiles/bench_ablation_concurrency.dir/bench_ablation_concurrency.cc.o"
  "CMakeFiles/bench_ablation_concurrency.dir/bench_ablation_concurrency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
