file(REMOVE_RECURSE
  "../bench/bench_fig2_channel_calibration"
  "../bench/bench_fig2_channel_calibration.pdb"
  "CMakeFiles/bench_fig2_channel_calibration.dir/bench_fig2_channel_calibration.cc.o"
  "CMakeFiles/bench_fig2_channel_calibration.dir/bench_fig2_channel_calibration.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_channel_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
