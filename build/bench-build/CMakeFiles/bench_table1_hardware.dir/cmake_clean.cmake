file(REMOVE_RECURSE
  "../bench/bench_table1_hardware"
  "../bench/bench_table1_hardware.pdb"
  "CMakeFiles/bench_table1_hardware.dir/bench_table1_hardware.cc.o"
  "CMakeFiles/bench_table1_hardware.dir/bench_table1_hardware.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_hardware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
