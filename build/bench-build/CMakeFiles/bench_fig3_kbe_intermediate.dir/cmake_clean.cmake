file(REMOVE_RECURSE
  "../bench/bench_fig3_kbe_intermediate"
  "../bench/bench_fig3_kbe_intermediate.pdb"
  "CMakeFiles/bench_fig3_kbe_intermediate.dir/bench_fig3_kbe_intermediate.cc.o"
  "CMakeFiles/bench_fig3_kbe_intermediate.dir/bench_fig3_kbe_intermediate.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_kbe_intermediate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
