# Empty compiler generated dependencies file for bench_fig3_kbe_intermediate.
# This may be replaced when dependencies are built.
