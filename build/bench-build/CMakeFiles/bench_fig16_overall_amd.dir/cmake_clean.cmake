file(REMOVE_RECURSE
  "../bench/bench_fig16_overall_amd"
  "../bench/bench_fig16_overall_amd.pdb"
  "CMakeFiles/bench_fig16_overall_amd.dir/bench_fig16_overall_amd.cc.o"
  "CMakeFiles/bench_fig16_overall_amd.dir/bench_fig16_overall_amd.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_overall_amd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
