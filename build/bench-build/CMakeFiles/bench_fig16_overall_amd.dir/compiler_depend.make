# Empty compiler generated dependencies file for bench_fig16_overall_amd.
# This may be replaced when dependencies are built.
