# Empty compiler generated dependencies file for bench_fig28_utilization_nvidia.
# This may be replaced when dependencies are built.
