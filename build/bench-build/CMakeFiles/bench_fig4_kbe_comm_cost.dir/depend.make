# Empty dependencies file for bench_fig4_kbe_comm_cost.
# This may be replaced when dependencies are built.
