# Empty compiler generated dependencies file for bench_fig23_channel_nvidia.
# This may be replaced when dependencies are built.
