
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig23_channel_nvidia.cc" "bench-build/CMakeFiles/bench_fig23_channel_nvidia.dir/bench_fig23_channel_nvidia.cc.o" "gcc" "bench-build/CMakeFiles/bench_fig23_channel_nvidia.dir/bench_fig23_channel_nvidia.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gpl_queries.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpl_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpl_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpl_ref.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpl_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpl_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpl_tpch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpl_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
