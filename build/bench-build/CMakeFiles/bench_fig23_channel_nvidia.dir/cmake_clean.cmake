file(REMOVE_RECURSE
  "../bench/bench_fig23_channel_nvidia"
  "../bench/bench_fig23_channel_nvidia.pdb"
  "CMakeFiles/bench_fig23_channel_nvidia.dir/bench_fig23_channel_nvidia.cc.o"
  "CMakeFiles/bench_fig23_channel_nvidia.dir/bench_fig23_channel_nvidia.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig23_channel_nvidia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
