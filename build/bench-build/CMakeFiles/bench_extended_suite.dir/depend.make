# Empty dependencies file for bench_extended_suite.
# This may be replaced when dependencies are built.
