# Empty dependencies file for bench_ablation_partitioned_join.
# This may be replaced when dependencies are built.
