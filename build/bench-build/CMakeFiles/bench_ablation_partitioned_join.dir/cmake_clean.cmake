file(REMOVE_RECURSE
  "../bench/bench_ablation_partitioned_join"
  "../bench/bench_ablation_partitioned_join.pdb"
  "CMakeFiles/bench_ablation_partitioned_join.dir/bench_ablation_partitioned_join.cc.o"
  "CMakeFiles/bench_ablation_partitioned_join.dir/bench_ablation_partitioned_join.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_partitioned_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
