# Empty dependencies file for bench_fig14_wg_error.
# This may be replaced when dependencies are built.
