file(REMOVE_RECURSE
  "../bench/bench_fig15_delay_cost"
  "../bench/bench_fig15_delay_cost.pdb"
  "CMakeFiles/bench_fig15_delay_cost.dir/bench_fig15_delay_cost.cc.o"
  "CMakeFiles/bench_fig15_delay_cost.dir/bench_fig15_delay_cost.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_delay_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
