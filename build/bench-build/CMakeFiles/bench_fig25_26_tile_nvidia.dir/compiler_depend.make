# Empty compiler generated dependencies file for bench_fig25_26_tile_nvidia.
# This may be replaced when dependencies are built.
