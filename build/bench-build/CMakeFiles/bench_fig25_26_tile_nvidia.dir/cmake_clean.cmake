file(REMOVE_RECURSE
  "../bench/bench_fig25_26_tile_nvidia"
  "../bench/bench_fig25_26_tile_nvidia.pdb"
  "CMakeFiles/bench_fig25_26_tile_nvidia.dir/bench_fig25_26_tile_nvidia.cc.o"
  "CMakeFiles/bench_fig25_26_tile_nvidia.dir/bench_fig25_26_tile_nvidia.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig25_26_tile_nvidia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
