# Empty compiler generated dependencies file for bench_fig21_data_size.
# This may be replaced when dependencies are built.
