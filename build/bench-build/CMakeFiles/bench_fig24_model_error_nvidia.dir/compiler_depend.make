# Empty compiler generated dependencies file for bench_fig24_model_error_nvidia.
# This may be replaced when dependencies are built.
