file(REMOVE_RECURSE
  "../bench/bench_fig24_model_error_nvidia"
  "../bench/bench_fig24_model_error_nvidia.pdb"
  "CMakeFiles/bench_fig24_model_error_nvidia.dir/bench_fig24_model_error_nvidia.cc.o"
  "CMakeFiles/bench_fig24_model_error_nvidia.dir/bench_fig24_model_error_nvidia.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig24_model_error_nvidia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
