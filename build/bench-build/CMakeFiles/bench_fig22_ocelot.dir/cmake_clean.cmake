file(REMOVE_RECURSE
  "../bench/bench_fig22_ocelot"
  "../bench/bench_fig22_ocelot.pdb"
  "CMakeFiles/bench_fig22_ocelot.dir/bench_fig22_ocelot.cc.o"
  "CMakeFiles/bench_fig22_ocelot.dir/bench_fig22_ocelot.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig22_ocelot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
