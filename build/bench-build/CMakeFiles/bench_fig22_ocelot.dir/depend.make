# Empty dependencies file for bench_fig22_ocelot.
# This may be replaced when dependencies are built.
