# Empty compiler generated dependencies file for bench_fig19_gpl_utilization.
# This may be replaced when dependencies are built.
