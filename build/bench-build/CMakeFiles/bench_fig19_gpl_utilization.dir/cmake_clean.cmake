file(REMOVE_RECURSE
  "../bench/bench_fig19_gpl_utilization"
  "../bench/bench_fig19_gpl_utilization.pdb"
  "CMakeFiles/bench_fig19_gpl_utilization.dir/bench_fig19_gpl_utilization.cc.o"
  "CMakeFiles/bench_fig19_gpl_utilization.dir/bench_fig19_gpl_utilization.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_gpl_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
