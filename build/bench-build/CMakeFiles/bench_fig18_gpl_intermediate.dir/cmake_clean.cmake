file(REMOVE_RECURSE
  "../bench/bench_fig18_gpl_intermediate"
  "../bench/bench_fig18_gpl_intermediate.pdb"
  "CMakeFiles/bench_fig18_gpl_intermediate.dir/bench_fig18_gpl_intermediate.cc.o"
  "CMakeFiles/bench_fig18_gpl_intermediate.dir/bench_fig18_gpl_intermediate.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_gpl_intermediate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
