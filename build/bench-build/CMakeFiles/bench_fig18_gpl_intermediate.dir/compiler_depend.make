# Empty compiler generated dependencies file for bench_fig18_gpl_intermediate.
# This may be replaced when dependencies are built.
