# Empty dependencies file for bench_fig20_breakdown_q8.
# This may be replaced when dependencies are built.
