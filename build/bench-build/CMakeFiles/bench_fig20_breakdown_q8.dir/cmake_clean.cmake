file(REMOVE_RECURSE
  "../bench/bench_fig20_breakdown_q8"
  "../bench/bench_fig20_breakdown_q8.pdb"
  "CMakeFiles/bench_fig20_breakdown_q8.dir/bench_fig20_breakdown_q8.cc.o"
  "CMakeFiles/bench_fig20_breakdown_q8.dir/bench_fig20_breakdown_q8.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_breakdown_q8.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
