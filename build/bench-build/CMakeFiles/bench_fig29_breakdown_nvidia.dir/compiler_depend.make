# Empty compiler generated dependencies file for bench_fig29_breakdown_nvidia.
# This may be replaced when dependencies are built.
