# Empty dependencies file for bench_fig13_tile_error.
# This may be replaced when dependencies are built.
