file(REMOVE_RECURSE
  "../bench/bench_fig13_tile_error"
  "../bench/bench_fig13_tile_error.pdb"
  "CMakeFiles/bench_fig13_tile_error.dir/bench_fig13_tile_error.cc.o"
  "CMakeFiles/bench_fig13_tile_error.dir/bench_fig13_tile_error.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_tile_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
