# Empty compiler generated dependencies file for bench_fig27_overall_nvidia.
# This may be replaced when dependencies are built.
